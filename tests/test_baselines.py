"""Random and adversarial baselines."""

import numpy as np
import pytest

from repro.baselines import (adversarial_inputs, fgsm, iterative_fgsm,
                             random_inputs, regression_adversarial)
from repro.errors import ConfigError


def test_random_inputs_from_test_split(mnist_smoke):
    x, y = random_inputs(mnist_smoke, 10, rng=0)
    assert x.shape == (10, 1, 28, 28)
    assert y.shape == (10,)
    with pytest.raises(ConfigError):
        random_inputs(mnist_smoke, 0)


def test_fgsm_stays_in_pixel_range(lenet1, mnist_smoke):
    x, y = mnist_smoke.sample_seeds(8, np.random.default_rng(1))
    adv = fgsm(lenet1, x, y, epsilon=0.15)
    assert adv.min() >= 0.0 and adv.max() <= 1.0
    assert np.abs(adv - x).max() <= 0.15 + 1e-12


def test_fgsm_increases_loss(lenet1, mnist_smoke):
    x, y = mnist_smoke.sample_seeds(20, np.random.default_rng(2))
    adv = fgsm(lenet1, x, y, epsilon=0.2)
    idx = np.arange(x.shape[0])
    before = lenet1.predict(x)[idx, y]
    after = lenet1.predict(adv)[idx, y]
    # True-class probability must drop on average — the attack works.
    assert after.mean() < before.mean()


def test_fgsm_epsilon_validation(lenet1, mnist_smoke):
    x, y = mnist_smoke.sample_seeds(2, np.random.default_rng(3))
    with pytest.raises(ConfigError):
        fgsm(lenet1, x, y, epsilon=0.0)


def test_iterative_fgsm_respects_ball(lenet1, mnist_smoke):
    x, y = mnist_smoke.sample_seeds(6, np.random.default_rng(4))
    adv = iterative_fgsm(lenet1, x, y, epsilon=0.1, steps=4)
    assert np.abs(adv - x).max() <= 0.1 + 1e-12
    assert adv.min() >= 0.0 and adv.max() <= 1.0


def test_iterative_at_least_as_strong_as_single(lenet1, mnist_smoke):
    x, y = mnist_smoke.sample_seeds(25, np.random.default_rng(5))
    idx = np.arange(x.shape[0])
    single = lenet1.predict(fgsm(lenet1, x, y, epsilon=0.1))[idx, y]
    multi = lenet1.predict(
        iterative_fgsm(lenet1, x, y, epsilon=0.1, steps=5))[idx, y]
    assert multi.mean() <= single.mean() + 0.02


def test_adversarial_inputs_wrapper(lenet1, mnist_smoke):
    adv, labels = adversarial_inputs(lenet1, mnist_smoke, 5, rng=6)
    assert adv.shape == (5, 1, 28, 28)
    assert labels.shape == (5,)


def test_regression_adversarial(driving_trio, driving_smoke):
    model = driving_trio[0]
    x, y = driving_smoke.sample_seeds(15, np.random.default_rng(7))
    adv = regression_adversarial(model, x, y, epsilon=0.1)
    before = ((model.predict(x).reshape(-1) - y) ** 2).mean()
    after = ((model.predict(adv).reshape(-1) - y) ** 2).mean()
    assert after >= before * 0.9  # error must not shrink meaningfully
    assert adv.min() >= 0.0 and adv.max() <= 1.0
