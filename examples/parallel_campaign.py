#!/usr/bin/env python
"""Parallel campaign walkthrough: shard a seed corpus across workers.

Runs the same MNIST generation campaign twice — serially and fanned out
over worker processes — and shows the campaign contract in action: both
runs find the *identical* difference-inducing inputs and merge to the
*identical* neuron coverage, because sharding and randomness depend
only on (seed, shard_size, corpus), never on the worker count.  Only
the wall-clock may differ (on a multi-core machine the fan-out wins).

Run:  python examples/parallel_campaign.py
"""

import os

import numpy as np

from repro import (Campaign, PAPER_HYPERPARAMS, constraint_for_dataset,
                   get_trio, load_dataset)

SCALE = "smoke"     # bump to "small"/"full" for bigger runs
N_SEEDS = 96        # corpus size; tiled from the test set below
SHARD_SIZE = 12     # seeds per shard — part of the run's identity
WORKERS = min(4, os.cpu_count() or 1)


def run_campaign(models, constraint, seeds, workers):
    """One campaign run; workers only changes how shards execute."""
    campaign = Campaign(models, PAPER_HYPERPARAMS["mnist"], constraint,
                        workers=workers, shard_size=SHARD_SIZE, seed=42)
    result = campaign.run(seeds)
    return campaign, result


def main():
    print("Loading dataset and models (first run trains and caches)...")
    dataset = load_dataset("mnist", scale=SCALE, seed=0)
    models = get_trio("mnist", scale=SCALE, seed=0, dataset=dataset)

    # Tile the test set up to N_SEEDS so shards have real work to do.
    x = dataset.x_test
    seeds = np.concatenate([x] * -(-N_SEEDS // x.shape[0]))[:N_SEEDS]
    n_shards = -(-len(seeds) // SHARD_SIZE)
    print(f"{len(seeds)} seeds -> {n_shards} shards of {SHARD_SIZE}")

    constraint = constraint_for_dataset(dataset)
    print("\nSerial run (workers=1)...")
    _, serial = run_campaign(models, constraint, seeds, workers=1)
    print(f"  {serial.difference_count} differences "
          f"in {serial.elapsed:.1f}s")

    print(f"Parallel run (workers={WORKERS})...")
    campaign, parallel = run_campaign(models, constraint, seeds,
                                      workers=WORKERS)
    print(f"  {parallel.difference_count} differences "
          f"in {parallel.elapsed:.1f}s")

    # The campaign contract: worker count changes speed, nothing else.
    assert parallel.difference_count == serial.difference_count
    assert [t.seed_index for t in parallel.tests] == \
        [t.seed_index for t in serial.tests]
    for a, b in zip(parallel.tests, serial.tests):
        np.testing.assert_array_equal(a.x, b.x)
    assert parallel.coverage == serial.coverage
    print("\nSerial and parallel runs are bit-identical:")
    found = sorted(t.seed_index for t in parallel.tests)
    print(f"  tests from seeds {found[:8]} ...")
    for name, cov in parallel.coverage.items():
        print(f"  merged coverage {name}: {cov:.1%}")
    print(f"  mean neuron coverage    : {campaign.mean_coverage():.1%}")


if __name__ == "__main__":
    main()
