"""Model zoo registry: build, train, cache, and reload the 15 DNNs.

The paper evaluates three DNNs per dataset (Table 1).  ``get_model``
returns a trained network for a zoo entry, training it on first use and
caching the weights under :func:`repro.datasets.cache_dir`, so that the
expensive part of an experiment run happens once per (model, scale, seed).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.datasets import cache_dir, load_dataset
from repro.errors import ConfigError
from repro.models.dave import (build_dave_dropout, build_dave_norminit,
                               build_dave_orig)
from repro.models.lenet import build_lenet1, build_lenet4, build_lenet5
from repro.models.malware import build_drebin_model, build_pdf_model
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg16, build_vgg19
from repro.nn import Trainer, accuracy, dtypes, steering_accuracy
from repro.utils.rng import as_rng

__all__ = ["ModelSpec", "MODEL_ZOO", "TRIOS", "TRAINING_DTYPE", "get_model",
           "get_trio", "get_model_payload", "get_trio_payloads",
           "train_model", "model_accuracy", "zoo_names"]

#: Bump to invalidate every cached model after architecture changes.
_CACHE_VERSION = 1

#: The zoo is built and trained at float64 regardless of the library
#: default: cached weights, experiment outputs, and the pinned engine
#: goldens were all captured at double precision and must stay
#: bit-stable.  Float32 models are derived copies (see
#: ``network_from_payload(..., dtype=...)``), never retrainings.
TRAINING_DTYPE = np.dtype(np.float64)


@dataclass(frozen=True)
class ModelSpec:
    """One zoo entry: how to build and train a model, plus paper context."""

    name: str                 # paper name, e.g. "MNI_C1"
    dataset: str              # dataset key for repro.datasets.load_dataset
    architecture: str         # human-readable description (Table 1)
    builder: object           # callable(dataset, rng) -> Network
    epochs: dict = field(default_factory=dict)   # scale -> epochs
    lr: float = 1e-3
    batch_size: int = 32
    loss: str = "cross_entropy"
    reported_accuracy: str = "n/a"   # the paper's Table 1 figure


def _image_builder(build):
    return lambda dataset, rng: build(rng=rng)


def _pdf_builder(hidden):
    def build(dataset, rng):
        return build_pdf_model(hidden, dataset.x_train, rng=rng,
                               name=f"pdf_{'_'.join(map(str, hidden))}")
    return build


def _drebin_builder(hidden):
    def build(dataset, rng):
        return build_drebin_model(hidden, dataset.x_train.shape[1], rng=rng,
                                  name=f"drebin_{'_'.join(map(str, hidden))}")
    return build


_CLS_EPOCHS = {"smoke": 8, "small": 15, "full": 25}
_MLP_EPOCHS = {"smoke": 12, "small": 25, "full": 40}
_DRV_EPOCHS = {"smoke": 8, "small": 15, "full": 25}

MODEL_ZOO = {
    "MNI_C1": ModelSpec("MNI_C1", "mnist", "LeNet-1",
                        _image_builder(build_lenet1), _CLS_EPOCHS,
                        reported_accuracy="98.33%"),
    "MNI_C2": ModelSpec("MNI_C2", "mnist", "LeNet-4",
                        _image_builder(build_lenet4), _CLS_EPOCHS,
                        reported_accuracy="98.59%"),
    "MNI_C3": ModelSpec("MNI_C3", "mnist", "LeNet-5",
                        _image_builder(build_lenet5), _CLS_EPOCHS,
                        reported_accuracy="98.96%"),
    "IMG_C1": ModelSpec("IMG_C1", "imagenet", "VGG-16 (mini)",
                        _image_builder(build_vgg16), _CLS_EPOCHS,
                        reported_accuracy="92.6%"),
    "IMG_C2": ModelSpec("IMG_C2", "imagenet", "VGG-19 (mini)",
                        _image_builder(build_vgg19), _CLS_EPOCHS,
                        reported_accuracy="92.7%"),
    "IMG_C3": ModelSpec("IMG_C3", "imagenet", "ResNet (mini)",
                        _image_builder(build_resnet), _CLS_EPOCHS,
                        reported_accuracy="96.43%"),
    "DRV_C1": ModelSpec("DRV_C1", "driving", "DAVE-orig",
                        _image_builder(build_dave_orig), _DRV_EPOCHS,
                        loss="mse", reported_accuracy="99.91% (1-MSE)"),
    "DRV_C2": ModelSpec("DRV_C2", "driving", "DAVE-norminit",
                        _image_builder(build_dave_norminit), _DRV_EPOCHS,
                        loss="mse", reported_accuracy="99.94% (1-MSE)"),
    "DRV_C3": ModelSpec("DRV_C3", "driving", "DAVE-dropout",
                        _image_builder(build_dave_dropout), _DRV_EPOCHS,
                        loss="mse", reported_accuracy="99.96% (1-MSE)"),
    "PDF_C1": ModelSpec("PDF_C1", "pdf", "<200, 200>",
                        _pdf_builder((200, 200)), _MLP_EPOCHS,
                        reported_accuracy="96.15%"),
    "PDF_C2": ModelSpec("PDF_C2", "pdf", "<200, 200, 200>",
                        _pdf_builder((200, 200, 200)), _MLP_EPOCHS,
                        reported_accuracy="96.25%"),
    "PDF_C3": ModelSpec("PDF_C3", "pdf", "<200, 200, 200, 200>",
                        _pdf_builder((200, 200, 200, 200)), _MLP_EPOCHS,
                        reported_accuracy="96.47%"),
    "APP_C1": ModelSpec("APP_C1", "drebin", "<200, 200>",
                        _drebin_builder((200, 200)), _MLP_EPOCHS,
                        reported_accuracy="98.6%"),
    "APP_C2": ModelSpec("APP_C2", "drebin", "<50, 50>",
                        _drebin_builder((50, 50)), _MLP_EPOCHS,
                        reported_accuracy="96.82%"),
    "APP_C3": ModelSpec("APP_C3", "drebin", "<200, 10>",
                        _drebin_builder((200, 10)), _MLP_EPOCHS,
                        reported_accuracy="92.66%"),
}

#: The three models tested per dataset, in Table 1 order.
TRIOS = {
    "mnist": ["MNI_C1", "MNI_C2", "MNI_C3"],
    "imagenet": ["IMG_C1", "IMG_C2", "IMG_C3"],
    "driving": ["DRV_C1", "DRV_C2", "DRV_C3"],
    "pdf": ["PDF_C1", "PDF_C2", "PDF_C3"],
    "drebin": ["APP_C1", "APP_C2", "APP_C3"],
}


def zoo_names():
    """All 15 zoo model names in Table 1 order."""
    return [name for trio in TRIOS.values() for name in trio]


def _model_seed(name, seed):
    """Stable (process-independent) per-model seed derivation."""
    return (zlib.crc32(name.encode("utf-8")) * 1000003 + int(seed)) % (2 ** 63)


def model_accuracy(network, dataset):
    """Task-appropriate accuracy: top-1 or the paper's 1-MSE proxy."""
    if dataset.task == "regression":
        return steering_accuracy(network, dataset.x_test, dataset.y_test)
    return accuracy(network, dataset.x_test, dataset.y_test)


def train_model(spec, dataset, scale="small", seed=0, verbose=False):
    """Build and train a fresh model for ``spec``; returns the network.

    The builder and trainer derive their randomness from ``seed`` and the
    model name, so two zoo models on the same dataset are *independently
    initialized and shuffled* — the paper's requirement for differential
    testing to be meaningful.
    """
    rng = as_rng(_model_seed(spec.name, seed))
    with dtypes.default_dtype(TRAINING_DTYPE):
        network = spec.builder(dataset, rng)
        network.name = spec.name
        trainer = Trainer(network, loss=spec.loss, optimizer="adam",
                          lr=spec.lr, rng=rng)
        epochs = spec.epochs.get(scale, 10)
        trainer.fit(dataset.x_train, dataset.y_train, epochs=epochs,
                    batch_size=spec.batch_size, verbose=verbose)
    return network


def _cache_paths(name, scale, seed):
    base = os.path.join(
        cache_dir(), f"model-v{_CACHE_VERSION}-{name}-{scale}-{seed}")
    return base + ".npz", base + ".json"


def get_model(name, scale="small", seed=0, use_cache=True, dataset=None,
              verbose=False):
    """Return a trained zoo model, training and caching on first use."""
    if name not in MODEL_ZOO:
        raise ConfigError(f"unknown model {name!r}; known: {zoo_names()}")
    spec = MODEL_ZOO[name]
    if dataset is None:
        dataset = load_dataset(spec.dataset, scale=scale, seed=seed)
    weights_path, meta_path = _cache_paths(name, scale, seed)
    if use_cache and os.path.exists(weights_path):
        rng = as_rng(_model_seed(spec.name, seed))
        with dtypes.default_dtype(TRAINING_DTYPE):
            network = spec.builder(dataset, rng)
        network.name = spec.name
        network.load(weights_path)
        return network
    network = train_model(spec, dataset, scale=scale, seed=seed,
                          verbose=verbose)
    if use_cache:
        network.save(weights_path)
        with open(meta_path, "w") as fh:
            json.dump({"name": name, "scale": scale, "seed": seed,
                       "accuracy": model_accuracy(network, dataset)}, fh)
    return network


def get_trio(dataset_name, scale="small", seed=0, use_cache=True,
             dataset=None, verbose=False):
    """Return the three trained models for one dataset (Table 1 trio)."""
    if dataset_name not in TRIOS:
        raise ConfigError(
            f"unknown dataset {dataset_name!r}; known: {sorted(TRIOS)}")
    if dataset is None:
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    return [get_model(name, scale=scale, seed=seed, use_cache=use_cache,
                      dataset=dataset, verbose=verbose)
            for name in TRIOS[dataset_name]]


def get_model_payload(name, scale="small", seed=0, use_cache=True,
                      dataset=None):
    """One zoo model as a picklable architecture+weights payload.

    This is what campaign workers receive: the payload rebuilds the
    trained network in a worker process without importing the builder or
    touching the weight cache (see
    :func:`repro.nn.config.network_from_payload`).
    """
    from repro.nn.config import network_to_payload
    model = get_model(name, scale=scale, seed=seed, use_cache=use_cache,
                      dataset=dataset)
    return network_to_payload(model)


def get_trio_payloads(dataset_name, scale="small", seed=0, use_cache=True,
                      dataset=None):
    """The Table 1 trio for one dataset as worker-shippable payloads."""
    from repro.nn.config import network_to_payload
    return [network_to_payload(m)
            for m in get_trio(dataset_name, scale=scale, seed=seed,
                              use_cache=use_cache, dataset=dataset)]
