"""Extensions: multi-neuron objective, soft constraints, seed selection,
momentum ascent."""

import numpy as np
import pytest

from repro.core import (AscentEngine, DeepXplore, LightingConstraint,
                        MomentumRule, PAPER_HYPERPARAMS)
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError, ConstraintError
from repro.extensions import (MomentumDeepXplore,
                              MultiNeuronCoverageObjective,
                              SoftBoxConstraint, class_balanced_seeds,
                              low_confidence_seeds, select_seeds)
from repro.nn import Dense, Network


def _models(n=2, seed=0):
    models = []
    for i in range(n):
        rng = np.random.default_rng(seed + i)
        models.append(Network([
            Dense(4, 8, rng=rng, name="h"),
            Dense(8, 3, activation="softmax", rng=rng, name="o"),
        ], (4,), name=f"m{i}"))
    return models


class TestMultiNeuron:
    def test_picks_k_per_model(self):
        models = _models()
        trackers = [NeuronCoverageTracker(m, threshold=0.5) for m in models]
        obj = MultiNeuronCoverageObjective(trackers, neurons_per_model=3,
                                           rng=0)
        targets = obj.pick()
        assert all(len(t) == 3 for t in targets)
        for tracker, neurons in zip(trackers, targets):
            uncovered = set(tracker.uncovered_ids())
            assert all(n in uncovered for n in neurons)

    def test_gradient_matches_numeric(self):
        models = _models()
        trackers = [NeuronCoverageTracker(m, threshold=0.5) for m in models]
        obj = MultiNeuronCoverageObjective(trackers, neurons_per_model=2,
                                           rng=1)
        obj.pick()
        x = np.random.default_rng(5).random((1, 4))
        grad = obj.gradient(x)
        eps = 1e-6
        for j in range(4):
            xp = x.copy(); xp[0, j] += eps
            xm = x.copy(); xm[0, j] -= eps
            numeric = (obj.value(xp) - obj.value(xm)) / (2 * eps)
            assert abs(grad[0, j] - numeric) < 1e-6

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            MultiNeuronCoverageObjective([], neurons_per_model=0)

    def test_works_in_generator(self, mnist_trio, mnist_smoke):
        seeds, _ = mnist_smoke.sample_seeds(10, np.random.default_rng(2))
        engine = DeepXplore(
            mnist_trio, PAPER_HYPERPARAMS["mnist"], LightingConstraint(),
            rng=3,
            coverage_factory=lambda trackers, rng:
                MultiNeuronCoverageObjective(trackers, neurons_per_model=3,
                                             rng=rng))
        result = engine.run(seeds)
        assert result.seeds_processed == 10


class TestSoftBox:
    def test_penalty_pushes_back_inside(self):
        con = SoftBoxConstraint(mu=5.0)
        x = np.array([[1.2, 0.5, -0.1]])
        grad = np.zeros_like(x)
        out = con.apply(grad, x)
        assert out[0, 0] < 0  # pushes the over-bright pixel down
        assert out[0, 1] == 0.0
        assert out[0, 2] > 0  # pushes the negative pixel up

    def test_violation_measure(self):
        con = SoftBoxConstraint()
        assert con.violation(np.array([0.5])) == 0.0
        assert con.violation(np.array([1.5, -0.5])) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConstraintError):
            SoftBoxConstraint(mu=0.0)
        with pytest.raises(ConstraintError):
            SoftBoxConstraint(low=1.0, high=0.0)

    def test_generator_integration(self, mnist_trio, mnist_smoke):
        seeds, _ = mnist_smoke.sample_seeds(8, np.random.default_rng(4))
        engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            SoftBoxConstraint(mu=10.0), rng=5)
        result = engine.run(seeds)
        for test in result.tests:
            assert test.x.min() >= -0.05 and test.x.max() <= 1.05


class TestSeedSelection:
    def test_balanced_covers_classes(self, mnist_smoke):
        x, y = class_balanced_seeds(mnist_smoke, 20, rng=0)
        assert x.shape[0] == 20
        counts = np.bincount(y, minlength=10)
        assert counts.max() - counts.min() <= 1

    def test_low_confidence_orders_by_confidence(self, mnist_trio,
                                                 mnist_smoke):
        x, _ = low_confidence_seeds(mnist_smoke, 5, rng=1,
                                    models=mnist_trio)
        chosen_conf = np.mean(
            [m.predict(x).max(axis=1) for m in mnist_trio], axis=0)
        all_conf = np.mean(
            [m.predict(mnist_smoke.x_test).max(axis=1)
             for m in mnist_trio], axis=0)
        assert chosen_conf.max() <= np.sort(all_conf)[5 + 1] + 1e-9

    def test_low_confidence_requires_models(self, mnist_smoke):
        with pytest.raises(ConfigError):
            low_confidence_seeds(mnist_smoke, 5)

    def test_dispatch(self, mnist_smoke, mnist_trio):
        for strategy in ("random", "balanced", "low-confidence"):
            x, y = select_seeds(strategy, mnist_smoke, 6, rng=2,
                                models=mnist_trio)
            assert x.shape[0] == 6
        with pytest.raises(ConfigError):
            select_seeds("hardest", mnist_smoke, 6)
        with pytest.raises(ConfigError):
            select_seeds("random", mnist_smoke, 0)

    def test_count_capped_at_split_size(self, mnist_smoke):
        x, _ = select_seeds("random", mnist_smoke, 10_000, rng=3)
        assert x.shape[0] == mnist_smoke.x_test.shape[0]


class TestMomentum:
    def test_beta_validation(self, mnist_trio):
        with pytest.raises(ConfigError):
            MomentumRule(beta=1.0)
        with pytest.raises(ConfigError):
            MomentumDeepXplore(mnist_trio, beta=1.0)

    def test_shim_deprecated(self, mnist_trio):
        with pytest.warns(DeprecationWarning):
            MomentumDeepXplore(mnist_trio, beta=0.8)

    def test_finds_differences(self, mnist_trio, mnist_smoke):
        seeds, _ = mnist_smoke.sample_seeds(15, np.random.default_rng(6))
        engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=7,
                            rule=MomentumRule(0.8))
        result = engine.run(seeds)
        assert result.difference_count > 0
        for test in result.tests:
            assert test.x.min() >= 0.0 and test.x.max() <= 1.0

    def test_beta_zero_matches_vanilla(self, mnist_trio, mnist_smoke):
        seeds, _ = mnist_smoke.sample_seeds(8, np.random.default_rng(8))
        vanilla = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             LightingConstraint(), rng=9)
        momentum = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                              LightingConstraint(), rng=9,
                              rule=MomentumRule(0.0))
        a = vanilla.run(seeds)
        b = momentum.run(seeds)
        assert a.difference_count == b.difference_count
        for ta, tb in zip(a.tests, b.tests):
            np.testing.assert_allclose(ta.x, tb.x)

    def test_momentum_batches(self, mnist_trio, mnist_smoke):
        """Momentum on the vectorized engine — impossible before the
        rules were split out of the sequential class."""
        seeds, _ = mnist_smoke.sample_seeds(15, np.random.default_rng(6))
        engine = AscentEngine(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                              LightingConstraint(), rng=7,
                              rule=MomentumRule(0.8))
        result = engine.run(seeds)
        assert result.difference_count > 0
        for test in result.tests:
            assert test.x.min() >= 0.0 and test.x.max() <= 1.0
