"""Synthetic mini-ImageNet: 10 classes of procedural 3x32x32 scenes.

The paper uses ImageNet solely as "a large, general image dataset whose
models have many neurons"; the experiments never depend on the semantic
content of the 1000 classes.  This generator builds ten visually distinct
procedural classes (shape x texture x palette) with heavy intra-class
jitter so the scaled-down VGG/ResNet models have real generalization work
to do while remaining trainable on a CPU.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, resolve_scale
from repro.errors import DatasetError
from repro.utils.rng import as_rng

__all__ = ["generate_imagenet", "render_scene", "CLASS_NAMES"]

IMAGE_SIZE = 32

#: ImageNet-flavoured names for the ten procedural classes.
CLASS_NAMES = [
    "goldfish", "zebra", "chainlink_fence", "beacon", "pinwheel",
    "manhole_cover", "volcano", "traffic_light", "honeycomb", "seashore",
]

_YY, _XX = np.meshgrid(np.arange(IMAGE_SIZE), np.arange(IMAGE_SIZE),
                       indexing="ij")


def _background(rng, base):
    """Soft vertical gradient around ``base`` colour plus pixel noise."""
    grad = np.linspace(-0.08, 0.08, IMAGE_SIZE)[None, :, None]
    img = np.asarray(base, dtype=np.float64)[:, None, None] + grad
    img = np.broadcast_to(img, (3, IMAGE_SIZE, IMAGE_SIZE)).copy()
    return img + rng.normal(0.0, 0.03, size=(3, IMAGE_SIZE, IMAGE_SIZE))


def _paint(img, mask, colour):
    for channel in range(3):
        img[channel][mask] = colour[channel]
    return img


def _disk_mask(cx, cy, radius):
    return (_XX - cx) ** 2 + (_YY - cy) ** 2 <= radius ** 2


def render_scene(class_index, rng):
    """Render one jittered ``(3, 32, 32)`` sample of a class."""
    if not 0 <= class_index < len(CLASS_NAMES):
        raise DatasetError(f"class index must be 0-9, got {class_index!r}")
    rng = as_rng(rng)
    jitter = rng.uniform(-3, 3, size=2)
    cx, cy = 16 + jitter[0], 16 + jitter[1]
    tone = rng.uniform(0.85, 1.15)

    if class_index == 0:  # goldfish: warm blob on blue water
        img = _background(rng, (0.15, 0.3, 0.65))
        body = _disk_mask(cx, cy, rng.uniform(6, 9))
        tail = _disk_mask(cx + rng.uniform(7, 10), cy, rng.uniform(3, 4.5))
        _paint(img, body | tail, (0.95 * tone, 0.45 * tone, 0.1))
    elif class_index == 1:  # zebra: high-contrast diagonal stripes
        img = _background(rng, (0.5, 0.45, 0.35))
        period = rng.uniform(4.0, 7.0)
        phase = rng.uniform(0, period)
        stripes = ((_XX + _YY + phase) % period) < period / 2
        _paint(img, stripes, (0.9 * tone, 0.9 * tone, 0.9 * tone))
    elif class_index == 2:  # chainlink fence: grid lines
        img = _background(rng, (0.35, 0.45, 0.3))
        period = int(rng.integers(5, 8))
        phase = int(rng.integers(0, period))
        grid = ((_XX + phase) % period < 2) | ((_YY + phase) % period < 2)
        _paint(img, grid, (0.75 * tone, 0.75 * tone, 0.78 * tone))
    elif class_index == 3:  # beacon: bright disk high in the frame
        img = _background(rng, (0.1, 0.12, 0.25))
        beam = _disk_mask(cx, 8 + jitter[1], rng.uniform(4, 6))
        _paint(img, beam, (1.0, 0.95 * tone, 0.6))
    elif class_index == 4:  # pinwheel: angular sectors
        img = _background(rng, (0.2, 0.2, 0.25))
        angles = np.arctan2(_YY - cy, _XX - cx)
        sectors = ((angles + rng.uniform(0, np.pi)) % (np.pi / 2)) < np.pi / 4
        inside = _disk_mask(cx, cy, rng.uniform(10, 13))
        _paint(img, sectors & inside, (0.85 * tone, 0.3, 0.55))
    elif class_index == 5:  # manhole cover: concentric rings
        img = _background(rng, (0.45, 0.42, 0.4))
        radii = np.sqrt((_XX - cx) ** 2 + (_YY - cy) ** 2)
        period = rng.uniform(3.5, 5.5)
        rings = (radii % period) < period / 2
        inside = radii < rng.uniform(11, 14)
        _paint(img, rings & inside, (0.2, 0.2, 0.22))
    elif class_index == 6:  # volcano: dark triangle with bright summit
        img = _background(rng, (0.3, 0.15, 0.2))
        width = rng.uniform(0.8, 1.3)
        mountain = (_YY > 10) & (np.abs(_XX - cx) < width * (_YY - 10))
        summit = _disk_mask(cx, 11, 2.5)
        _paint(img, mountain, (0.25, 0.18, 0.15))
        _paint(img, summit, (1.0, 0.5 * tone, 0.1))
    elif class_index == 7:  # traffic light: three vertical dots
        img = _background(rng, (0.2, 0.22, 0.24))
        for offset, colour in ((-7, (0.9, 0.1, 0.1)), (0, (0.9, 0.8, 0.1)),
                               (7, (0.1, 0.8, 0.2))):
            _paint(img, _disk_mask(cx, cy + offset, 3.0),
                   tuple(c * tone for c in colour))
    elif class_index == 8:  # honeycomb: offset dot lattice
        img = _background(rng, (0.75, 0.6, 0.2))
        period = int(rng.integers(6, 9))
        cells = ((_XX % period - period / 2) ** 2 +
                 (_YY % period - period / 2) ** 2) < (period / 3.2) ** 2
        _paint(img, cells, (0.4, 0.25, 0.05))
    else:  # seashore: horizontal bands (sky / sea / sand)
        img = _background(rng, (0.5, 0.7, 0.9))
        horizon = int(rng.integers(10, 16))
        sand = int(rng.integers(22, 27))
        _paint(img, (_YY >= horizon) & (_YY < sand), (0.1, 0.35, 0.6 * tone))
        _paint(img, _YY >= sand, (0.85 * tone, 0.75, 0.5))

    img += rng.normal(0.0, 0.02, size=img.shape)
    return np.clip(img, 0.0, 1.0)


_SCALE_SIZES = {
    "smoke": (20, 8),
    "small": (80, 20),
    "full": (300, 60),
}


def generate_imagenet(scale="small", seed=0):
    """Generate the synthetic mini-ImageNet dataset at a named scale."""
    resolve_scale(scale)
    rng = as_rng(seed)
    n_train, n_test = _SCALE_SIZES[scale]
    images, labels = [], []
    for class_index in range(len(CLASS_NAMES)):
        for _ in range(n_train + n_test):
            images.append(render_scene(class_index, rng))
            labels.append(class_index)
    x = np.stack(images)
    y = np.asarray(labels)
    order = rng.permutation(x.shape[0])
    x, y = x[order], y[order]
    test_mask = np.zeros(x.shape[0], dtype=bool)
    for class_index in range(len(CLASS_NAMES)):
        idx = np.flatnonzero(y == class_index)
        test_mask[idx[:n_test]] = True
    return Dataset(
        name="imagenet",
        x_train=x[~test_mask], y_train=y[~test_mask],
        x_test=x[test_mask], y_test=y[test_mask],
        task="classification", num_classes=len(CLASS_NAMES),
        class_names=list(CLASS_NAMES),
        metadata={"scale": scale, "seed": seed, "domain": "image"},
    )
