"""Utility modules: rng plumbing, tables, timing, image ops."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.utils import (Stopwatch, as_rng, clip01, derive_rng, l1_distance,
                         render_table, rng_from_seed_sequence, save_pgm,
                         save_ppm, spawn_rngs, spawn_seed_sequences,
                         to_uint8)


class TestRng:
    def test_as_rng_accepts_seed_and_generator(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen
        assert isinstance(as_rng(42), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)

    def test_same_seed_same_stream(self):
        a = as_rng(7).random(5)
        b = as_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_derive_rng_label_dependent(self):
        base = 99
        a = derive_rng(as_rng(base), "weights").random(4)
        b = derive_rng(as_rng(base), "data").random(4)
        assert not np.array_equal(a, b)
        # Deterministic given (seed, label).
        a2 = derive_rng(as_rng(base), "weights").random(4)
        np.testing.assert_array_equal(a, a2)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(as_rng(3), 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_spawn_seed_sequences_deterministic(self):
        a = spawn_seed_sequences(11, 5)
        b = spawn_seed_sequences(11, 5)
        assert len(a) == 5
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(
                rng_from_seed_sequence(sa).integers(0, 1000, 8),
                rng_from_seed_sequence(sb).integers(0, 1000, 8))

    def test_spawn_seed_sequences_position_dependent(self):
        # Child i's stream depends on position, not on siblings: the
        # campaign relies on shard i drawing the same numbers no matter
        # how many shards exist after it.
        short = spawn_seed_sequences(11, 2)
        long = spawn_seed_sequences(11, 6)
        for sa, sb in zip(short, long):
            np.testing.assert_array_equal(
                rng_from_seed_sequence(sa).integers(0, 1000, 8),
                rng_from_seed_sequence(sb).integers(0, 1000, 8))

    def test_spawn_seed_sequences_does_not_mutate_caller(self):
        # Regression: SeedSequence.spawn advances the parent's
        # n_children_spawned, so spawning must work on a copy — a
        # campaign engine re-run with the same SeedSequence seed (and
        # fuzz rounds re-deriving children on resume) must draw
        # identical streams every time.
        root = np.random.SeedSequence(11)
        a = spawn_seed_sequences(root, 3)
        assert root.n_children_spawned == 0
        b = spawn_seed_sequences(root, 3)
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(
                rng_from_seed_sequence(sa).integers(0, 1000, 8),
                rng_from_seed_sequence(sb).integers(0, 1000, 8))
        # And the int path agrees with the SeedSequence path.
        for sa, sb in zip(a, spawn_seed_sequences(11, 3)):
            np.testing.assert_array_equal(
                rng_from_seed_sequence(sa).integers(0, 1000, 8),
                rng_from_seed_sequence(sb).integers(0, 1000, 8))

    def test_spawn_seed_sequences_survive_pickling(self):
        import pickle
        children = spawn_seed_sequences(11, 3)
        for child in children:
            thawed = pickle.loads(pickle.dumps(child))
            np.testing.assert_array_equal(
                rng_from_seed_sequence(thawed).integers(0, 1000, 8),
                rng_from_seed_sequence(child).integers(0, 1000, 8))


class TestTables:
    def test_basic_rendering(self):
        text = render_table(["a", "bb"], [[1, 2.5], ["x", 0.000123]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "0.000123" in text

    def test_alignment(self):
        text = render_table(["col"], [["short"], ["a much longer cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_nan_rendered_as_dash(self):
        text = render_table(["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_never_crashes_on_floats(self, values):
        render_table([f"c{i}" for i in range(len(values))], [values])


class TestStopwatch:
    def test_context_manager(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates(self):
        sw = Stopwatch()
        sw.start(); sw.stop()
        first = sw.elapsed
        sw.start(); sw.stop()
        assert sw.elapsed >= first


class TestImageOps:
    def test_clip01(self):
        np.testing.assert_array_equal(clip01(np.array([-1.0, 0.5, 2.0])),
                                      [0.0, 0.5, 1.0])

    def test_l1_distance(self):
        a = np.zeros((1, 2, 2))
        b = np.full((1, 2, 2), 0.25)
        assert l1_distance(a, b) == pytest.approx(1.0)
        with pytest.raises(ShapeError):
            l1_distance(np.zeros((2,)), np.zeros((3,)))

    @given(st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_to_uint8_roundtrip(self, value):
        img = np.full((2, 2), value / 255.0)
        assert to_uint8(img)[0, 0] == value

    def test_save_pgm(self, tmp_path):
        path = tmp_path / "img.pgm"
        save_pgm(path, np.random.default_rng(0).random((1, 5, 4)))
        data = path.read_bytes()
        assert data.startswith(b"P5\n4 5\n255\n")
        assert len(data) == len(b"P5\n4 5\n255\n") + 20

    def test_save_ppm(self, tmp_path):
        path = tmp_path / "img.ppm"
        save_ppm(path, np.zeros((3, 4, 6)))
        assert path.read_bytes().startswith(b"P6\n6 4\n255\n")

    def test_save_pgm_shape_validation(self, tmp_path):
        with pytest.raises(ShapeError):
            save_pgm(tmp_path / "x.pgm", np.zeros((3, 4, 4)))
        with pytest.raises(ShapeError):
            save_ppm(tmp_path / "x.ppm", np.zeros((1, 4, 4)))
