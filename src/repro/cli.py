"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Summarize the five synthetic datasets at a scale.
``zoo``
    Train/load the 15-model zoo and print the Table 1 summary.
``generate``
    Run DeepXplore on one dataset and report differences + coverage;
    ``--corpus DIR`` persists the results, ``--resume`` additionally
    starts from the corpus's saved coverage.
``fuzz``
    Run a resumable coverage-guided fuzzing session over a persistent
    corpus (waves of sharded campaigns; killed sessions resume
    bit-identically).
``corpus``
    Inspect (``info``), fold together (``merge``), or shrink
    (``distill``) corpus stores.
``serve`` / ``submit`` / ``status``
    The fuzz farm: run the always-on campaign daemon over a farm root
    (``--compact-every`` adds background compaction), submit
    generate/fuzz/federate/compact jobs against its named tenant
    stores, and inspect job state (see docs/FARM.md).
``join`` / ``peers``
    Federation (see docs/DISTRIBUTED.md): edit a farm root's persisted
    peer list and show the live gossip from each peer.  ``generate
    --peers HOST:PORT,...`` fans campaign shards across those daemons.
``experiment``
    Run one named experiment (table1..table12, figure8..figure10,
    pollution) and print its table.
``report``
    Run every experiment and write a markdown report (EXPERIMENTS.md
    format).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.backends import backend_names
from repro.core import (ASCENT_RULES, PAPER_HYPERPARAMS,
                        constraint_for_dataset, make_engine, make_rule,
                        resolve_models)
from repro.corpus import CorpusStore, FuzzSession, corpus_fingerprint
from repro.coverage import NeuronCoverageTracker
from repro.datasets import dataset_names, load_dataset
from repro.errors import ReproError
from repro.experiments import EXPERIMENTS
from repro.extensions.seed_selection import strategy_names
from repro.models import TRIOS, get_trio, model_accuracy
from repro.utils.ascii_art import side_by_side

__all__ = ["main", "build_parser"]


def build_parser():
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepXplore reproduction (Pei et al., SOSP 2017)")
    parser.add_argument("--scale", default="smoke",
                        choices=["smoke", "small", "full"],
                        help="experiment scale (default: smoke)")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="summarize the synthetic datasets")
    sub.add_parser("zoo", help="train/load all 15 models (Table 1)")

    gen = sub.add_parser("generate", help="run DeepXplore on one dataset")
    gen.add_argument("dataset", choices=dataset_names())
    gen.add_argument("--constraint", default="default",
                     help="image constraint: light | occl | blackout")
    gen.add_argument("--seeds", type=int, default=40,
                     help="number of seed inputs")
    gen.add_argument("--engine", default="sequential",
                     choices=["sequential", "batch", "campaign"],
                     help="sequential Algorithm 1, the vectorized batch "
                          "engine, or a sharded multi-process campaign")
    gen.add_argument("--workers", type=int, default=1,
                     help="campaign worker processes (campaign engine only)")
    gen.add_argument("--shard-size", type=int, default=16,
                     help="seeds per campaign shard; part of the "
                          "deterministic run identity, unlike --workers")
    # No argparse choices= on purpose: unknown rule names flow into
    # make_rule, whose ConfigError names the known rules — one error
    # surface for flag typos and programmatic misuse alike.
    gen.add_argument("--ascent", default="vanilla", metavar="RULE",
                     help="per-iteration update rule: "
                          f"{' | '.join(ASCENT_RULES)} (any engine)")
    gen.add_argument("--beta", type=float, default=None,
                     help="momentum coefficient in [0, 1) (--ascent "
                          "momentum/nesterov only; default 0.9)")
    gen.add_argument("--overshoot", type=float, default=None,
                     help="boundary overshoot factor >= 0 "
                          "(--ascent deepfool only; default 0.02)")
    gen.add_argument("--dtype", default=None,
                     choices=["float32", "float64"],
                     help="compute precision; the zoo trains at float64, "
                          "float32 runs a converted copy ~2x faster")
    gen.add_argument("--backend", default="numpy", choices=backend_names(),
                     help="compute backend adapter (gradient ascent "
                          "needs a differentiable one; default: numpy)")
    gen.add_argument("--show", action="store_true",
                     help="render a seed/generated pair as ASCII art")
    gen.add_argument("--corpus", metavar="DIR",
                     help="persist seeds, tests, and coverage into a "
                          "corpus store at DIR")
    gen.add_argument("--resume", action="store_true",
                     help="start from the coverage saved in --corpus "
                          "instead of from zero")
    gen.add_argument("--peers", metavar="HOST:PORT,...",
                     help="fan campaign shards across these farm "
                          "daemons (campaign engine only; results are "
                          "bit-identical to a local run, peers only "
                          "add throughput)")

    fuzz = sub.add_parser(
        "fuzz", help="resumable coverage-guided fuzzing over a corpus")
    fuzz.add_argument("dataset", choices=dataset_names())
    fuzz.add_argument("--corpus", metavar="DIR", required=True,
                      help="corpus store directory (created if absent)")
    fuzz.add_argument("--rounds", type=int, default=4,
                      help="target total waves for the corpus; a resumed "
                           "or interrupted session continues toward it")
    fuzz.add_argument("--wave-size", type=int, default=16,
                      help="seeds scheduled per wave (identity)")
    fuzz.add_argument("--workers", type=int, default=1,
                      help="campaign worker processes (throughput only)")
    fuzz.add_argument("--shard-size", type=int, default=16,
                      help="seeds per campaign shard (identity)")
    fuzz.add_argument("--ascent", default="vanilla", metavar="RULE",
                      help="per-iteration update rule: "
                           f"{' | '.join(ASCENT_RULES)} (identity: a "
                           "corpus fuzzed with momentum resumes with "
                           "momentum)")
    fuzz.add_argument("--beta", type=float, default=None,
                      help="momentum coefficient in [0, 1) (--ascent "
                           "momentum/nesterov only; default 0.9)")
    fuzz.add_argument("--overshoot", type=float, default=None,
                      help="boundary overshoot factor >= 0 "
                           "(--ascent deepfool only; default 0.02)")
    fuzz.add_argument("--constraint", default="default",
                      help="image constraint: light | occl | blackout")
    fuzz.add_argument("--dtype", default=None,
                      choices=["float32", "float64"],
                      help="compute precision (identity: a corpus fuzzed "
                           "at float32 resumes at float32)")
    fuzz.add_argument("--seed-strategy", default="random",
                      choices=strategy_names(),
                      help="how the initial seed pool is drawn")
    fuzz.add_argument("--initial-seeds", type=int, default=64,
                      help="initial seed-pool size for a fresh corpus")
    fuzz.add_argument("--distill", action="store_true",
                      help="after fuzzing, shrink the stored tests to a "
                           "coverage-preserving subset")

    corpus = sub.add_parser("corpus", help="inspect/merge/distill a corpus")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    info = corpus_sub.add_parser("info", help="summarize a corpus store")
    info.add_argument("corpus_dir")
    merge = corpus_sub.add_parser(
        "merge", help="fold source corpora into a destination store")
    merge.add_argument("dest")
    merge.add_argument("sources", nargs="+")
    distill = corpus_sub.add_parser(
        "distill", help="shrink stored tests to a coverage-preserving "
                        "subset (greedy set-cover)")
    distill.add_argument("corpus_dir")
    distill.add_argument("dataset", choices=dataset_names())

    serve = sub.add_parser(
        "serve", help="run the fuzz-farm daemon over a farm root")
    serve.add_argument("--root", required=True, metavar="DIR",
                       help="farm root directory (created if absent); "
                            "tenant stores live under DIR/stores/")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads pulling jobs (jobs on one "
                            "store always serialize)")
    serve.add_argument("--capacity", type=int, default=8,
                       help="max jobs in flight before submits are "
                            "rejected with a retry-after hint")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="attempts per job before it parks as failed")
    serve.add_argument("--backoff", type=float, default=1.0,
                       help="base seconds for exponential retry backoff")
    serve.add_argument("--compact-every", type=float, default=None,
                       metavar="SECONDS",
                       help="run a background compaction sweep this "
                            "often: each sweep schedules a "
                            "compact-distill job per tenant store with "
                            "distillable tests (default: off)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running farm daemon")
    submit.add_argument("--root", required=True, metavar="DIR",
                        help="farm root the daemon was started with")
    submit.add_argument("--store", required=True,
                        help="tenant corpus store name under the root")
    submit.add_argument("--kind", default="fuzz",
                        choices=["fuzz", "generate", "federate",
                                 "compact-merge", "compact-distill"])
    submit.add_argument("--campaign", metavar="DIR", default=None,
                        help="shared shard-ledger directory (federate "
                             "jobs only; every participating host must "
                             "reach it)")
    submit.add_argument("--lease", type=float, default=None,
                        metavar="SECONDS",
                        help="how long a crashed host's shard claim "
                             "blocks a steal (federate jobs only; "
                             "default 60)")
    submit.add_argument("--sources", default=None,
                        metavar="STORE,STORE,...",
                        help="tenant stores to fold into --store "
                             "(compact-merge jobs only)")
    submit.add_argument("--dataset", default="mnist",
                        choices=dataset_names())
    submit.add_argument("--rounds", type=int, default=2,
                        help="target total waves for the store (fuzz)")
    submit.add_argument("--seeds", type=int, default=16,
                        help="initial pool size (fuzz) / seed count "
                             "(generate)")
    submit.add_argument("--wave-size", type=int, default=8)
    submit.add_argument("--shard-size", type=int, default=8)
    submit.add_argument("--ascent", default="vanilla", metavar="RULE",
                        help="per-iteration update rule: "
                             f"{' | '.join(ASCENT_RULES)}")
    submit.add_argument("--constraint", default="default",
                        help="image constraint: light | occl | blackout")
    submit.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes inside the job")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print "
                             "its result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds")

    status = sub.add_parser(
        "status", help="show a farm daemon's jobs (or one job)")
    status.add_argument("--root", required=True, metavar="DIR")
    status.add_argument("job_id", nargs="?",
                        help="show one job in detail")

    join = sub.add_parser(
        "join", help="add (or remove) a peer in a farm root's peer list")
    join.add_argument("--root", required=True, metavar="DIR",
                      help="farm root whose peers.json to edit (the "
                           "daemon there gossips with these peers)")
    join.add_argument("peer", metavar="HOST:PORT",
                      help="the other daemon's control endpoint")
    join.add_argument("--remove", action="store_true",
                      help="remove the peer instead of adding it")

    peers = sub.add_parser(
        "peers", help="show a farm root's peer list with live gossip")
    peers.add_argument("--root", required=True, metavar="DIR")

    exp = sub.add_parser("experiment", help="run one paper experiment")
    exp.add_argument("experiment_id", choices=sorted(EXPERIMENTS))

    rep = sub.add_parser("report", help="write the full markdown report")
    rep.add_argument("--output", default="EXPERIMENTS.md")
    rep.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                     help="run only these experiments")
    return parser


def _cmd_datasets(args):
    for name in dataset_names():
        dataset = load_dataset(name, scale=args.scale, seed=args.seed)
        print(dataset.describe())
    return 0


def _cmd_zoo(args):
    for dataset_name, trio in TRIOS.items():
        dataset = load_dataset(dataset_name, scale=args.scale,
                               seed=args.seed)
        models = get_trio(dataset_name, scale=args.scale, seed=args.seed,
                          dataset=dataset)
        for model in models:
            acc = model_accuracy(model, dataset)
            print(f"{model.name:<8} {dataset_name:<9} "
                  f"neurons={model.total_neurons:<6} "
                  f"params={model.parameter_count():<8} acc={acc:.2%}")
    return 0


def _cmd_generate(args):
    if args.resume and not args.corpus:
        print("error: --resume needs --corpus DIR", file=sys.stderr)
        return 2
    # Resolve the ascent rule first: a typo'd --ascent or a rule flag
    # the rule doesn't accept fails in milliseconds, not after the
    # dataset and models have loaded.
    rule = make_rule(args.ascent, beta=args.beta, overshoot=args.overshoot)
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    models = get_trio(args.dataset, scale=args.scale, seed=args.seed,
                      dataset=dataset)
    # Resolve backend/dtype BEFORE trackers and fingerprints, so both
    # bind to the networks the engine will actually run.
    models = resolve_models(models, dtype=args.dtype, backend=args.backend)
    hp = PAPER_HYPERPARAMS[args.dataset]
    seeds, _ = dataset.sample_seeds(
        min(args.seeds, dataset.x_test.shape[0]),
        np.random.default_rng(args.seed + 1))
    store = trackers = None
    if args.corpus:
        store = CorpusStore(args.corpus)
        store.bind_config(corpus_fingerprint(models, hp, dataset.task))
        trackers = [NeuronCoverageTracker(m, threshold=hp.threshold)
                    for m in models]
        if args.resume:
            persisted = store.coverage_states()
            for model, tracker in zip(models, trackers):
                if model.name in persisted:
                    tracker.load_state_dict(persisted[model.name])
    shard_runner = None
    if args.peers:
        if args.engine != "campaign":
            print("error: --peers needs --engine campaign "
                  "(shards are the unit of distribution)",
                  file=sys.stderr)
            return 2
        from repro.dist import PeerShardRunner, parse_peer
        shard_runner = PeerShardRunner(
            [parse_peer(text) for text in args.peers.split(",")
             if text.strip()],
            args.dataset, constraint=args.constraint)
    engine = make_engine(
        args.engine, models, hp,
        constraint_for_dataset(dataset, kind=args.constraint),
        dataset.task, args.seed + 2, workers=args.workers,
        shard_size=args.shard_size, trackers=trackers, ascent=rule)
    if shard_runner is not None:
        result = engine.run(seeds, shard_runner=shard_runner)
        remote = sum(1 for place in shard_runner.placements.values()
                     if place != "local")
        print(f"peers                : {remote}/"
              f"{len(shard_runner.placements)} shards ran remotely")
        for peer, error in sorted(shard_runner.failures.items()):
            print(f"  peer {peer[0]}:{peer[1]} retired: {error}",
                  file=sys.stderr)
    else:
        result = engine.run(seeds)
    if store is not None:
        seed_hashes = [store.add_entry(x, "seed", origin=int(i))[0]
                       for i, x in enumerate(seeds)]
        added = 0
        for test in result.tests:
            _, was_new = store.add_entry(
                test.x, "test", origin=seed_hashes[test.seed_index],
                iterations=int(test.iterations),
                predictions=np.asarray(test.predictions).tolist(),
                seed_class=test.seed_class)
            added += int(was_new)
        # OR-merge into the persisted snapshots: without --resume the
        # trackers started empty, and committing them raw would shrink
        # the corpus's accumulated coverage.
        store.commit(coverage_states=store.merge_coverage(
            {m.name: t.state_dict() for m, t in zip(models, trackers)}),
            fuzz_state=store.fuzz_state())
        print(f"corpus               : {store.path} "
              f"(+{added} tests, {len(store)} entries)")
    if args.engine == "campaign":
        print(f"engine               : campaign "
              f"(workers={args.workers}, shard_size={args.shard_size}, "
              f"ascent={engine.rule.identity()})")
    else:
        print(f"engine               : {args.engine} "
              f"(ascent={engine.rule.identity()})")
    print(f"seeds processed      : {result.seeds_processed}")
    print(f"differences found    : {result.difference_count}")
    print(f"  via gradient ascent: "
          f"{result.difference_count - result.seeds_disagreed}")
    print(f"  seeds pre-disagreed: {result.seeds_disagreed}")
    print(f"mean neuron coverage : {engine.mean_coverage():.1%}")
    print(f"elapsed              : {result.elapsed:.1f}s")
    ascent = [t for t in result.tests if t.iterations > 0]
    if args.show and ascent and dataset.metadata.get("domain") == "image":
        test = ascent[0]
        print()
        print(side_by_side(seeds[test.seed_index], test.x,
                           labels=("seed", "generated")))
        print("predictions:", test.predictions.tolist())
    return 0


def _cmd_fuzz(args):
    rule = make_rule(args.ascent, beta=args.beta, overshoot=args.overshoot)
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    models = get_trio(args.dataset, scale=args.scale, seed=args.seed,
                      dataset=dataset)
    models = resolve_models(models, dtype=args.dtype)
    session = FuzzSession(
        args.corpus, models, PAPER_HYPERPARAMS[args.dataset],
        constraint_for_dataset(dataset, kind=args.constraint),
        task=dataset.task, wave_size=args.wave_size, workers=args.workers,
        shard_size=args.shard_size, seed=args.seed,
        rule=rule, dataset=dataset,
        seed_strategy=args.seed_strategy,
        initial_seed_count=args.initial_seeds)
    if args.rounds <= session.completed_rounds:
        print(f"corpus already at {session.completed_rounds} round(s); "
              f"raise --rounds to fuzz further")
    report = session.run(args.rounds)
    print(report.render())
    if args.distill:
        kept, dropped = session.distill()
        print(f"distilled: kept {kept} test(s), dropped {dropped} entries")
    print(session.store.describe())
    print(f"mean neuron coverage : {session.mean_coverage():.1%}")
    return 0


def _cmd_corpus(args):
    if args.corpus_command == "info":
        print(CorpusStore(args.corpus_dir, create=False).describe())
        return 0
    if args.corpus_command == "merge":
        # Sources must already exist (create=False) and agree on their
        # config fingerprints — both checked up front, so a typo'd path
        # or a mixed-trio merge fails before the destination is touched
        # rather than leaving it half-merged.  Only the destination may
        # be created.
        sources = [CorpusStore(source, create=False)
                   for source in args.sources]
        dest = CorpusStore(args.dest)
        configs = {json.dumps(s.config, sort_keys=True): s.path
                   for s in [dest] + sources if s.config is not None}
        if len(configs) > 1:
            print("error: corpora were built against different "
                  "configs and cannot merge:", file=sys.stderr)
            for config, path in sorted(configs.items()):
                print(f"  {path}: {config}", file=sys.stderr)
            return 1
        added = sum(dest.merge(source) for source in sources)
        print(f"merged {len(args.sources)} corpora into {dest.path} "
              f"(+{added} entries, {len(dest)} total)")
        return 0
    store = CorpusStore(args.corpus_dir, create=False)   # distill
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    models = get_trio(args.dataset, scale=args.scale, seed=args.seed,
                      dataset=dataset)
    hp = PAPER_HYPERPARAMS[args.dataset]
    threshold = (store.config or {}).get("threshold", hp.threshold)
    # Validate the rebuilt models against the store's fingerprint BEFORE
    # deleting anything: distilling with the wrong trio (or the wrong
    # --scale) would measure set-cover against the wrong networks and
    # unlink coverage-essential tests.
    fingerprint = corpus_fingerprint(models, hp, dataset.task)
    fingerprint["threshold"] = float(threshold)
    store.bind_config(fingerprint)
    kept, dropped = store.distill(models, threshold=threshold)
    print(f"distilled {store.path}: kept {kept} test(s), "
          f"dropped {dropped} entries")
    return 0


def _cmd_serve(args):
    import os
    import signal

    from repro.farm import FarmDaemon, FarmServer
    daemon = FarmDaemon(args.root, workers=args.workers,
                        capacity=args.capacity,
                        max_attempts=args.max_attempts,
                        backoff_base=args.backoff,
                        scale=args.scale, seed=args.seed,
                        compact_every=args.compact_every)
    daemon.start()
    server = FarmServer(daemon)
    print(f"farm daemon serving {daemon.root} on "
          f"127.0.0.1:{server.port} (pid {os.getpid()}, "
          f"workers={args.workers}, capacity={args.capacity})",
          flush=True)
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: server.request_drain())
    server.serve_until_drained()
    print("farm daemon drained")
    return 0


def _cmd_submit(args):
    from repro.farm import FarmClient
    client = FarmClient(args.root)
    spec = {
        "kind": args.kind, "store": args.store, "dataset": args.dataset,
        "rounds": args.rounds, "seeds": args.seeds,
        "wave_size": args.wave_size, "shard_size": args.shard_size,
        "seed": args.seed, "ascent": args.ascent,
        "constraint": args.constraint, "workers": args.workers,
    }
    if args.campaign is not None:
        spec["campaign"] = args.campaign
    if args.lease is not None:
        spec["lease"] = args.lease
    if args.sources is not None:
        spec["sources"] = [name.strip()
                           for name in args.sources.split(",")
                           if name.strip()]
    job = client.submit(spec)
    print(f"submitted {job['job_id']} ({args.kind} -> {args.store})")
    if args.wait:
        final = client.wait(job["job_id"], timeout=args.timeout)
        for key, value in sorted(final["result"].items()):
            print(f"  {key}: {value}")
    return 0


def _cmd_status(args):
    from repro.farm import FarmClient, Job
    client = FarmClient(args.root)
    if args.job_id:
        job = client.status(args.job_id)
        print(Job.from_dict(job).describe())
        for key, value in sorted(job.get("result", {}).items()):
            print(f"  {key}: {value}")
        if job.get("error"):
            print(f"  error: {job['error']}")
        return 0
    jobs = client.status()
    if not jobs:
        print("no jobs")
        return 0
    for record in jobs:
        print(Job.from_dict(record).describe())
    return 0


def _cmd_join(args):
    from repro.dist import PeerList, parse_peer
    host, port = parse_peer(args.peer)
    peer_list = PeerList(args.root)
    if args.remove:
        removed = peer_list.remove(host, port)
        print(f"{'removed' if removed else 'not a peer:'} {host}:{port}")
        return 0 if removed else 1
    if peer_list.add(host, port):
        print(f"joined {host}:{port}")
    else:
        print(f"already a peer: {host}:{port}")
    return 0


def _cmd_peers(args):
    from repro.dist import PeerList
    from repro.farm import PeerClient
    peer_list = PeerList(args.root)
    records = peer_list.records()
    if not records:
        print("no peers configured (add one with `repro join`)")
        return 0
    for record in records:
        host, port = record["host"], record["port"]
        # Peers learned via gossip (auto-discovery) vs `repro join`.
        tag = " [discovered]" if record["via"] == "gossip" else ""
        try:
            gossip = PeerClient(host, port, timeout=2.0).peers()["gossip"]
        except ReproError as error:
            print(f"{host}:{port:<6} unreachable ({error}){tag}")
            continue
        stores = gossip.get("stores", {})
        store_bits = " ".join(
            f"{name}[{info['entries']}e g{info['coverage_gen']}]"
            for name, info in sorted(stores.items())) or "-"
        print(f"{host}:{port:<6} queue={gossip.get('queue_depth', '?')} "
              f"draining={gossip.get('draining')} stores: {store_bits}"
              f"{tag}")
    return 0


def _cmd_experiment(args):
    result = EXPERIMENTS[args.experiment_id](scale=args.scale,
                                             seed=args.seed)
    print(result.render())
    return 0


def _cmd_report(args):
    from repro.reporting import write_report
    path = write_report(args.output, scale=args.scale, seed=args.seed,
                        experiment_ids=args.only, verbose=True)
    print(f"wrote {path}")
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "zoo": _cmd_zoo,
    "generate": _cmd_generate,
    "fuzz": _cmd_fuzz,
    "corpus": _cmd_corpus,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "join": _cmd_join,
    "peers": _cmd_peers,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
}


def main(argv=None):
    """CLI entry point; returns a process exit code.

    Library errors (:class:`~repro.errors.ReproError` — a missing
    corpus path, an incompatible store, a bad configuration) are user
    errors at the CLI boundary: one line on stderr, exit 1, no
    traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
