"""Analysis tools: diversity, overlap, SSIM, pollution, retraining."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import (average_l1_diversity, class_pair_overlap,
                            detect_polluted, pairwise_l1_diversity,
                            retrain_with_augmentation, ssim)
from repro.core.generator import GeneratedTest
from repro.datasets import pollute_labels
from repro.errors import ConfigError, ShapeError
from repro.nn import accuracy


def _fake_test(x, seed_index):
    return GeneratedTest(x=x, seed_index=seed_index, iterations=1,
                         predictions=np.array([0, 1]), seed_class=0,
                         elapsed=0.0)


class TestDiversity:
    def test_average_l1(self):
        seeds = np.zeros((2, 1, 2, 2))
        tests = [_fake_test(np.full((1, 2, 2), 0.5), 0),
                 _fake_test(np.full((1, 2, 2), 0.25), 1)]
        assert average_l1_diversity(tests, seeds) == pytest.approx(1.5)

    def test_empty(self):
        assert average_l1_diversity([], np.zeros((1, 2))) == 0.0

    def test_pairwise(self):
        inputs = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        # Pairs: (0,1)=2, (0,2)=4, (1,2)=2 -> mean 8/3.
        assert pairwise_l1_diversity(inputs) == pytest.approx(8 / 3)

    def test_pairwise_single_input(self):
        assert pairwise_l1_diversity(np.zeros((1, 4))) == 0.0


class TestSsim:
    def test_identity_is_one(self):
        img = np.random.default_rng(0).random((1, 8, 8))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((8, 8)), rng.random((8, 8))
        assert ssim(a, b) == pytest.approx(ssim(b, a))

    def test_different_images_below_one(self):
        rng = np.random.default_rng(2)
        a = rng.random((8, 8))
        b = 1.0 - a
        assert ssim(a, b) < 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))
        with pytest.raises(ShapeError):
            ssim(np.zeros(4), np.zeros(4))

    @given(arrays(np.float64, (6, 6), elements=st.floats(0, 1)))
    @settings(max_examples=20, deadline=None)
    def test_bounded(self, img):
        value = ssim(img, 1.0 - img)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_multichannel_averages(self):
        rng = np.random.default_rng(3)
        a = rng.random((3, 8, 8))
        per_channel = np.mean([ssim(a[c], a[c]) for c in range(3)])
        assert ssim(a, a) == pytest.approx(per_channel)


class TestOverlap:
    def test_same_class_overlaps_more(self, lenet5, mnist_smoke):
        same, diff = class_pair_overlap(lenet5, mnist_smoke, n_pairs=30,
                                        threshold=0.25, rng=0)
        assert same.avg_overlap > diff.avg_overlap
        assert same.total_neurons == lenet5.total_neurons

    def test_overlap_bounded_by_activated(self, lenet5, mnist_smoke):
        same, diff = class_pair_overlap(lenet5, mnist_smoke, n_pairs=10,
                                        threshold=0.25, rng=1)
        for stats in (same, diff):
            assert stats.avg_overlap <= stats.avg_activated + 1e-9


class TestPollutionDetection:
    def test_detects_planted_cluster(self, mnist_smoke):
        polluted_ds, truth = pollute_labels(mnist_smoke, source_class=9,
                                            target_class=1, fraction=0.5,
                                            rng=4)
        # Use the actual polluted images as the "generated" inputs: the
        # detector must then recover them (sanity upper bound).
        generated = polluted_ds.x_train[truth[:3]]
        report = detect_polluted(generated, polluted_ds, truth,
                                 suspect_label=1)
        assert report.detection_rate > 0.3
        assert report.flagged.size == truth.size
        assert 0.0 <= report.precision <= 1.0

    def test_validation(self, mnist_smoke):
        polluted_ds, truth = pollute_labels(mnist_smoke, rng=5)
        with pytest.raises(ConfigError):
            detect_polluted(np.zeros((2, 4)), polluted_ds, truth, 1)
        with pytest.raises(ConfigError):
            detect_polluted(np.zeros((1, 1, 28, 28)), polluted_ds, truth,
                            suspect_label=77)


class TestRetraining:
    def test_curve_has_epochs_plus_one_points(self, mnist_smoke):
        from repro.models import get_model
        net = get_model("MNI_C1", scale="smoke", seed=0,
                        dataset=mnist_smoke)
        extra_x, extra_y = mnist_smoke.sample_seeds(
            10, np.random.default_rng(6))
        curve = retrain_with_augmentation(net, mnist_smoke, extra_x,
                                          extra_y, epochs=2, rng=7)
        assert len(curve.accuracies) == 3
        assert curve.source == "deepxplore"
        assert isinstance(curve.improvement, float)

    def test_shape_mismatch(self, mnist_smoke):
        from repro.models import get_model
        net = get_model("MNI_C1", scale="smoke", seed=0,
                        dataset=mnist_smoke)
        with pytest.raises(ConfigError):
            retrain_with_augmentation(net, mnist_smoke,
                                      np.zeros((3, 1, 28, 28)),
                                      np.zeros(2), epochs=1)
