"""Federation end-to-end: N hosts converge bit-identically to one.

These tests drive real mnist campaigns (the session-cached smoke trio)
through the three federation surfaces: ledger-federated fuzz sessions
(concurrent hosts, crashed hosts, restarted hosts) and RPC shard
fan-out (healthy peer, dead peer).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import Campaign, PAPER_HYPERPARAMS
from repro.core.constraints import LightingConstraint
from repro.corpus import FuzzSession
from repro.dist import FederatedSession, PeerShardRunner
from repro.utils.faults import InjectedFault, inject, reset_faults

WAVE, SHARD, SEED, POOL = 6, 2, 11, 8


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_faults()
    yield
    reset_faults()


def make_session(path, models, dataset):
    return FuzzSession(path, models, PAPER_HYPERPARAMS["mnist"],
                       LightingConstraint(), wave_size=WAVE, workers=1,
                       shard_size=SHARD, seed=SEED, dataset=dataset,
                       initial_seed_count=POOL)


def test_two_hosts_converge_to_solo(tmp_path, mnist_trio, mnist_smoke,
                                    assert_stores_identical):
    """The acceptance-criterion core: two concurrent hosts splitting
    every wave over a shared ledger end bit-identical to workers=1."""
    make_session(tmp_path / "solo", mnist_trio, mnist_smoke).run(2)

    campaign_dir = tmp_path / "campaign"
    hosts, errors = [], []
    for name in ("hostA", "hostB"):
        session = make_session(tmp_path / name, mnist_trio, mnist_smoke)
        hosts.append(FederatedSession(session, campaign_dir, host=name))

    def run(fed):
        try:
            fed.run(2)
        except BaseException as error:     # noqa: BLE001 — surface below
            errors.append(error)

    threads = [threading.Thread(target=run, args=(fed,)) for fed in hosts]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert_stores_identical(tmp_path / "solo", tmp_path / "hostA")
    assert_stores_identical(tmp_path / "solo", tmp_path / "hostB")
    for fed in hosts:
        assert fed.completed_rounds == 2


def test_crashed_host_is_stolen_then_restart_converges(
        tmp_path, mnist_trio, mnist_smoke, assert_stores_identical):
    """Kill host A mid-wave (after it claimed a shard), let host B
    steal and finish, then restart A: everyone equals the solo run."""
    make_session(tmp_path / "solo", mnist_trio, mnist_smoke).run(1)
    campaign_dir = tmp_path / "campaign"

    # Host A dies on its second claim, leaving a claimed shard behind.
    session_a = make_session(tmp_path / "hostA", mnist_trio, mnist_smoke)
    fed_a = FederatedSession(session_a, campaign_dir, host="hostA")
    with inject("dist.shard.claim", countdown=2, action="raise"):
        with pytest.raises(InjectedFault):
            fed_a.run(1)
    assert fed_a.completed_rounds == 0      # nothing committed

    # Host B (short lease: "hostA" is another machine from the ledger's
    # point of view, so it cannot pid-check it) steals the abandoned
    # claim and completes the round alone.
    session_b = make_session(tmp_path / "hostB", mnist_trio, mnist_smoke)
    fed_b = FederatedSession(session_b, campaign_dir, host="hostB",
                             lease=0.05, poll=0.01)
    fed_b.run(1)
    assert_stores_identical(tmp_path / "solo", tmp_path / "hostB")

    # Host A restarts: the round is fully done in the ledger, so it
    # replays the merge without recomputing and converges too.
    restarted = FederatedSession(
        make_session(tmp_path / "hostA", mnist_trio, mnist_smoke),
        campaign_dir, host="hostA")
    restarted.run(1)
    assert_stores_identical(tmp_path / "solo", tmp_path / "hostA")


# -- RPC fan-out --------------------------------------------------------------
def _campaign(models):
    return Campaign(models, PAPER_HYPERPARAMS["mnist"],
                    LightingConstraint(), task="classification",
                    workers=1, shard_size=2, seed=SEED)


def _sample_seeds(dataset, n=6):
    seeds, _ = dataset.sample_seeds(n, np.random.default_rng(SEED + 1))
    return seeds


def _assert_results_equal(a, b):
    assert (a.seeds_processed, a.seeds_disagreed, a.seeds_exhausted) == \
        (b.seeds_processed, b.seeds_disagreed, b.seeds_exhausted)
    assert len(a.tests) == len(b.tests)
    for ta, tb in zip(a.tests, b.tests):
        assert ta.seed_index == tb.seed_index
        assert ta.iterations == tb.iterations
        np.testing.assert_array_equal(ta.x, tb.x)
        np.testing.assert_array_equal(ta.predictions, tb.predictions)


def test_peer_shard_runner_matches_local(live_peer, mnist_trio,
                                         mnist_smoke):
    _daemon, _server, port = live_peer
    seeds = _sample_seeds(mnist_smoke)

    local = _campaign(mnist_trio)
    want = local.run(seeds)

    remote = _campaign(mnist_trio)
    # local=False: every shard must take the RPC path, so this test
    # proves remote execution really is bit-identical (the default
    # work-conserving mode would let the driver win shards locally).
    runner = PeerShardRunner([("127.0.0.1", port)], "mnist",
                             timeout=120.0, local=False)
    got = remote.run(seeds, shard_runner=runner)

    assert not runner.failures
    assert set(runner.placements.values()) == {"127.0.0.1:%d" % port}
    _assert_results_equal(want, got)
    for ta, tb in zip(local.trackers, remote.trackers):
        np.testing.assert_array_equal(ta.state_dict()["covered"],
                                      tb.state_dict()["covered"])


def test_peer_shard_runner_survives_dead_peer(mnist_trio, mnist_smoke):
    """An unreachable peer is retired and its shards run locally; the
    result is indistinguishable from a purely local run."""
    seeds = _sample_seeds(mnist_smoke)
    want = _campaign(mnist_trio).run(seeds)

    campaign = _campaign(mnist_trio)
    # Port 1 on loopback: connection refused immediately.
    runner = PeerShardRunner([("127.0.0.1", 1)], "mnist", timeout=2.0)
    got = campaign.run(seeds, shard_runner=runner)

    assert ("127.0.0.1", 1) in runner.failures
    assert set(runner.placements.values()) == {"local"}
    _assert_results_equal(want, got)


def test_run_shard_verb_refuses_fingerprint_mismatch(live_peer,
                                                     mnist_trio,
                                                     mnist_smoke):
    """A driver whose models differ from the peer's zoo must be refused
    before any compute happens."""
    from repro.errors import FarmError
    from repro.farm import PeerClient
    from repro.dist.coordinator import encode_shard
    from repro.dist.sync import encode_coverage
    from repro.core.campaign import shard_corpus

    _daemon, _server, port = live_peer
    shard = shard_corpus(_sample_seeds(mnist_smoke, 2), 2, seed=SEED)[0]
    campaign = _campaign(mnist_trio)
    states = [t.state_dict() for t in campaign.trackers]
    client = PeerClient("127.0.0.1", port, timeout=60.0)
    with pytest.raises(FarmError, match="fingerprint"):
        client.run_shard({
            "dataset": "mnist", "task": "classification",
            "constraint": "default", "ascent": "vanilla",
            "fingerprint": {"models": ["NOT_THE_TRIO"]},
            "trackers": [encode_coverage(s) for s in states],
            "shard": encode_shard(shard)})
