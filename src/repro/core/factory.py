"""The one engine selector shared by experiments, examples, and the CLI.

Lives in ``core`` (not the experiments layer) because it composes only
core objects: the :class:`~repro.core.engine.DeepXplore` facade, the
vectorized :class:`~repro.core.engine.AscentEngine`, the
:class:`~repro.core.campaign.Campaign` runner, and
:func:`~repro.core.engine.make_rule`.  A separate module rather than
``engine.py`` itself so the engine module never imports the campaign
layer built on top of it.
"""

from __future__ import annotations

import numpy as np

from repro.backends import make_backend, unwrap_network
from repro.core.campaign import Campaign
from repro.core.engine import AscentEngine, DeepXplore, make_rule
from repro.errors import ConfigError

__all__ = ["make_engine", "resolve_models"]


def resolve_models(models, dtype=None, backend="numpy"):
    """Normalize model arguments for an engine: adapt through the
    requested :mod:`~repro.backends` backend, optionally converting to
    ``dtype``, then unwrap to the raw differentiable networks the
    engines and trackers key on.

    Dtype conversion goes through the payload round-trip
    (:func:`repro.nn.config.network_from_payload`), so the originals
    are never mutated.  Inference-only backends (e.g. ``onnx``) cannot
    drive gradient ascent and are refused here with the reason.
    """
    kwargs = {} if dtype is None else {"dtype": np.dtype(dtype)}
    return [unwrap_network(make_backend(backend, m, **kwargs))
            for m in models]


def make_engine(engine, models, hp, constraint, task, rng, workers=1,
                shard_size=None, trackers=None, ascent="vanilla",
                beta=None, overshoot=None, absorb_exhausted=True,
                dtype=None, backend="numpy"):
    """Build a generation engine from CLI-flag-shaped knobs.

    ``engine`` is ``"sequential"`` (Algorithm 1 as the paper runs it,
    one seed at a time), ``"batch"`` (the vectorized
    :class:`~repro.core.AscentEngine`, same yield at a fraction of the
    wall-clock), or ``"campaign"`` (sharded across ``workers``
    processes).  Campaign runs derive their determinism from a root
    seed, so ``rng`` must be an integer or a
    :class:`numpy.random.SeedSequence` (so drivers that spawn per-round
    children, like fuzz waves, can pass one through) for that engine;
    ``shard_size`` (campaign only) defaults to the campaign's own.

    ``ascent``/``beta``/``overshoot`` pick the per-iteration update
    rule (:func:`repro.core.make_rule`) — every engine accepts every
    rule, so e.g. momentum or deepfool compose with campaigns and fuzz
    waves.  Rule-specific flags are validated there (``beta`` is
    momentum/nesterov-only, ``overshoot`` deepfool-only).
    ``absorb_exhausted=False`` selects the paper-exact coverage
    accounting (only difference-inducing inputs fold into coverage) on
    whichever engine is built.

    ``backend`` names a registered :mod:`~repro.backends` adapter and
    ``dtype`` requests a compute precision; both resolve through
    :func:`resolve_models`.  When ``dtype`` changes the models, any
    caller-built ``trackers`` would still be bound to the originals, so
    that combination is refused — build trackers over
    ``resolve_models(...)``'s output instead (or let the engine build
    its own).
    """
    if dtype is not None or backend != "numpy":
        resolved = resolve_models(models, dtype=dtype, backend=backend)
        converted = any(r is not m for r, m in zip(resolved, models))
        if converted and trackers is not None:
            raise ConfigError(
                "dtype conversion rebuilds the models, which would orphan "
                "the caller-built trackers; call resolve_models() first "
                "and build trackers over its output")
        models = resolved
    rule = make_rule(ascent, beta=beta, overshoot=overshoot)
    if engine == "sequential":
        return DeepXplore(models, hp, constraint, task=task, rng=rng,
                          trackers=trackers, rule=rule,
                          absorb_exhausted=absorb_exhausted)
    if engine == "batch":
        return AscentEngine(models, hp, constraint, task=task, rng=rng,
                            trackers=trackers, rule=rule,
                            absorb_exhausted=absorb_exhausted)
    if engine == "campaign":
        if isinstance(rng, (int, np.integer)):
            seed = int(rng)
        elif isinstance(rng, np.random.SeedSequence):
            seed = rng
        else:
            raise ConfigError(
                "campaign engine needs an integer seed or a SeedSequence")
        kwargs = {} if shard_size is None else {"shard_size": shard_size}
        return Campaign(models, hp, constraint, task=task, workers=workers,
                        seed=seed, trackers=trackers, rule=rule,
                        absorb_exhausted=absorb_exhausted, **kwargs)
    raise ConfigError(
        f"unknown engine {engine!r}; known: sequential, batch, campaign")
