"""Code-coverage tracer for the prediction path."""

import numpy as np

from repro.coverage import CodeCoverage
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, Network


def _net():
    rng = np.random.default_rng(0)
    return Network([
        Conv2D(1, 2, 3, padding=1, rng=rng, name="c"),
        MaxPool2D(2, name="p"),
        Flatten(name="f"),
        Dense(2 * 4 * 4, 3, activation="softmax", rng=rng, name="o"),
    ], input_shape=(1, 8, 8), name="cc")


def test_lines_executed_nonempty():
    net = _net()
    hits = CodeCoverage(net).lines_executed(np.zeros((1, 1, 8, 8)))
    assert hits
    files = {f for f, _ in hits}
    assert any(f.endswith("conv.py") for f in files)
    assert any(f.endswith("dense.py") for f in files)


def test_one_input_saturates_dynamic_coverage():
    """The paper's Table 6 phenomenon: any single input executes the same
    prediction-path lines as a large reference set."""
    net = _net()
    cov = CodeCoverage(net)
    rng = np.random.default_rng(1)
    one = rng.random((1, 1, 8, 8))
    many = rng.random((30, 1, 8, 8))
    assert cov.coverage(one, reference=many) == 1.0


def test_static_lines_cover_reachable_forwards():
    net = _net()
    static = CodeCoverage(net).static_lines()
    executed = CodeCoverage(net).lines_executed(np.zeros((1, 1, 8, 8)))
    # Every *executed* forward line must be in the static enumeration.
    missing = {(f, l) for f, l in executed
               if (f, l) in static} - static
    assert not missing


def test_static_coverage_high_but_bounded():
    net = _net()
    value = CodeCoverage(net).static_coverage(np.zeros((2, 1, 8, 8)))
    assert 0.5 < value <= 1.0


def test_tracer_restores_previous_trace():
    import sys
    net = _net()
    sentinel_called = []

    def sentinel(frame, event, arg):
        sentinel_called.append(event)
        return None

    sys.settrace(sentinel)
    try:
        CodeCoverage(net).lines_executed(np.zeros((1, 1, 8, 8)))
        assert sys.gettrace() is sentinel
    finally:
        sys.settrace(None)
