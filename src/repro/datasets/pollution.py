"""Training-data pollution utilities (paper §7.3).

The pollution experiment trains one LeNet-5 on clean MNIST and another on
a polluted copy where 30% of the images labelled 9 are re-labelled 1, then
uses DeepXplore plus an SSIM nearest-neighbour search to recover the
polluted samples.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.errors import DatasetError
from repro.utils.rng import as_rng

__all__ = ["pollute_labels"]


def pollute_labels(dataset, source_class=9, target_class=1, fraction=0.3,
                   rng=None):
    """Return ``(polluted_dataset, polluted_indices)``.

    ``fraction`` of the training samples labelled ``source_class`` are
    re-labelled ``target_class``; the test split is untouched.  The indices
    of the flipped training samples are returned so detection experiments
    can score themselves.
    """
    if not 0.0 < fraction <= 1.0:
        raise DatasetError(f"fraction must be in (0, 1], got {fraction}")
    rng = as_rng(rng)
    y = np.asarray(dataset.y_train).copy()
    candidates = np.flatnonzero(y == source_class)
    if candidates.size == 0:
        raise DatasetError(f"no training samples with label {source_class}")
    n_flip = max(1, int(round(candidates.size * fraction)))
    flipped = rng.choice(candidates, size=n_flip, replace=False)
    y[flipped] = target_class
    polluted = Dataset(
        name=f"{dataset.name}-polluted",
        x_train=dataset.x_train, y_train=y,
        x_test=dataset.x_test, y_test=dataset.y_test,
        task=dataset.task, num_classes=dataset.num_classes,
        feature_names=dataset.feature_names,
        class_names=dataset.class_names,
        metadata={**dataset.metadata, "polluted_from": source_class,
                  "polluted_to": target_class},
    )
    return polluted, np.sort(flipped)
