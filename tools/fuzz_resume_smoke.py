#!/usr/bin/env python
"""CI smoke check: kill a fuzz session mid-wave, resume, assert identity.

Runs a tiny two-round fuzz campaign twice into temp stores — once
uninterrupted, once killed mid-wave (simulated after part of a wave is
already persisted) and then resumed — and asserts the two corpora are
bit-identical: same entry records in the same order, same input bytes,
same merged coverage masks, same fuzz state.  This is the corpus
subsystem's resume contract (docs/CORPUS.md) at CLI-smoke scale; the
full matrix (workers ∈ {1, 2}, forward-pass accounting) lives in
``tests/corpus/test_session_resume.py``.

Exit code 0 on success, non-zero (with a diff summary) on any mismatch.

Usage:  PYTHONPATH=src python tools/fuzz_resume_smoke.py
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro import (FuzzSession, PAPER_HYPERPARAMS, constraint_for_dataset,
                   get_trio, load_dataset)
from repro.corpus import CorpusStore

ROUNDS = 2
WAVE_SIZE = 8
SHARD_SIZE = 4
ROOT_SEED = 11
POOL = 16


def make_session(corpus_dir, models, dataset, constraint):
    return FuzzSession(corpus_dir, models, PAPER_HYPERPARAMS["mnist"],
                       constraint, wave_size=WAVE_SIZE,
                       shard_size=SHARD_SIZE, seed=ROOT_SEED,
                       dataset=dataset, initial_seed_count=POOL)


def run_killed_then_resumed(corpus_dir, models, dataset, constraint):
    """First invocation dies mid-wave; second resumes to the target."""
    session = make_session(corpus_dir, models, dataset, constraint)
    real_add, test_adds = CorpusStore.add_entry, [0]

    def dying_add(self, x, kind, **meta):
        if kind == "test":
            test_adds[0] += 1
            if test_adds[0] > 1:   # die with the wave half-persisted
                raise KeyboardInterrupt("simulated kill")
        return real_add(self, x, kind, **meta)

    CorpusStore.add_entry = dying_add
    try:
        session.run(ROUNDS)
        raise SystemExit("smoke setup broken: the simulated kill never "
                         "fired (no wave produced two tests?)")
    except KeyboardInterrupt:
        pass
    finally:
        CorpusStore.add_entry = real_add

    resumed = make_session(corpus_dir, models, dataset, constraint)
    print(f"  killed mid-wave; resumed at round "
          f"{resumed.completed_rounds}, continuing to {ROUNDS}")
    resumed.run(ROUNDS)


def compare(ref_dir, crash_dir):
    failures = []
    ref, crash = CorpusStore(ref_dir), CorpusStore(crash_dir)
    if [dict(e) for e in ref.entries()] != [dict(e) for e in
                                            crash.entries()]:
        failures.append(
            f"entry records differ: {len(ref)} vs {len(crash)} entries")
    else:
        for entry in ref.entries():
            a = ref.load_input(entry["hash"])
            b = crash.load_input(entry["hash"])
            if not np.array_equal(a, b):
                failures.append(f"input bytes differ for {entry['hash']}")
    ref_cov, crash_cov = ref.coverage_states(), crash.coverage_states()
    if set(ref_cov) != set(crash_cov):
        failures.append(f"coverage models differ: {sorted(ref_cov)} vs "
                        f"{sorted(crash_cov)}")
    for name in sorted(set(ref_cov) & set(crash_cov)):
        if not np.array_equal(ref_cov[name]["covered"],
                              crash_cov[name]["covered"]):
            failures.append(f"merged coverage mask differs for {name}")
    if ref.fuzz_state() != crash.fuzz_state():
        failures.append("fuzz checkpoint state differs")
    return failures


def main():
    print("fuzz-resume smoke: tiny corpus, "
          f"{ROUNDS} rounds, kill + resume, determinism assert")
    dataset = load_dataset("mnist", scale="smoke", seed=0)
    models = get_trio("mnist", scale="smoke", seed=0, dataset=dataset)
    constraint = constraint_for_dataset(dataset)
    with tempfile.TemporaryDirectory() as workdir:
        ref_dir, crash_dir = f"{workdir}/ref", f"{workdir}/crash"
        report = make_session(ref_dir, models, dataset,
                              constraint).run(ROUNDS)
        print(f"  reference: {report.waves_run} wave(s), "
              f"{report.new_tests} new test(s)")
        run_killed_then_resumed(crash_dir, models, dataset, constraint)
        failures = compare(ref_dir, crash_dir)
    if failures:
        print("FAIL: interrupted+resumed corpus diverged from the "
              "uninterrupted run:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: kill + resume is bit-identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
