"""Persistent corpus + coverage-guided fuzz scheduling.

The corpus subsystem turns the stateless generation engines into a
long-running service: :class:`CorpusStore` persists every seed, every
difference-inducing test, and the merged per-model coverage on disk
(content-addressed, atomically, resumably); :class:`SeedScheduler`
decides what to fuzz next by novel-coverage yield; :class:`FuzzSession`
loops campaign waves over the two, checkpointing after every wave so a
killed run resumes bit-identically.

User surface: ``python -m repro fuzz``, ``python -m repro generate
--corpus/--resume``, ``python -m repro corpus {info,merge,distill}``.
See docs/CORPUS.md.
"""

from repro.corpus.scheduler import (ENERGY_EPSILON, INITIAL_ENERGY,
                                    NOVELTY_WEIGHT, VISIT_DECAY,
                                    SeedScheduler)
from repro.corpus.session import FuzzReport, FuzzSession
from repro.corpus.store import (CorpusEntry, CorpusStore,
                                corpus_fingerprint, input_hash)

__all__ = ["CorpusStore", "CorpusEntry", "corpus_fingerprint", "input_hash",
           "SeedScheduler", "INITIAL_ENERGY", "VISIT_DECAY",
           "NOVELTY_WEIGHT", "ENERGY_EPSILON",
           "FuzzSession", "FuzzReport"]
