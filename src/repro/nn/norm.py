"""Batch normalization for 2-D (dense) and 4-D (conv) activations."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import dtypes
from repro.nn.layer import Layer
from repro.nn.parameter import Parameter

__all__ = ["BatchNorm"]


class BatchNorm(Layer):
    """Normalize per feature (2-D input) or per channel (4-D input).

    Training mode uses batch statistics and updates exponential running
    averages; inference mode uses the running averages, so the layer is a
    simple differentiable affine map during DeepXplore's gradient ascent.
    """

    def __init__(self, num_features, momentum=0.9, eps=1e-5, name=None):
        super().__init__(name=name)
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(self.num_features), f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(self.num_features), f"{self.name}.beta")
        dtype = dtypes.get_default_dtype()
        self.running_mean = np.zeros(self.num_features, dtype=dtype)
        self.running_var = np.ones(self.num_features, dtype=dtype)

    def cast(self, dtype):
        super().cast(dtype)
        dt = dtypes.resolve(dtype)
        self.running_mean = self.running_mean.astype(dt, copy=False)
        self.running_var = self.running_var.astype(dt, copy=False)
        return self

    def _reshape_stats(self, stat, ndim):
        if ndim == 2:
            return stat[None, :]
        return stat[None, :, None, None]

    def forward(self, x, training=False, workspace=None):
        if x.ndim not in (2, 4) or x.shape[1] != self.num_features:
            raise ShapeError(
                f"{self.name}: expected {self.num_features} features/channels, "
                f"got shape {x.shape}")
        axes = (0,) if x.ndim == 2 else (0, 2, 3)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.shape[0] if x.ndim == 2 else x.shape[0] * x.shape[2] * x.shape[3]
            self.running_mean *= self.momentum
            self.running_mean += (1.0 - self.momentum) * mean
            # Unbiased variance for the running estimate, biased in-batch.
            unbiased = var * count / max(count - 1, 1)
            self.running_var *= self.momentum
            self.running_var += (1.0 - self.momentum) * unbiased
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._reshape_stats(mean, x.ndim)) * \
            self._reshape_stats(inv_std, x.ndim)
        out = self._reshape_stats(self.gamma.value, x.ndim) * x_hat + \
            self._reshape_stats(self.beta.value, x.ndim)
        return out, (x_hat, inv_std, axes, training, x.ndim)

    def backward(self, ctx, grad_out, accumulate=True):
        x_hat, inv_std, axes, training, ndim = ctx
        if accumulate:
            self.gamma.grad += (grad_out * x_hat).sum(axis=axes)
            self.beta.grad += grad_out.sum(axis=axes)
        gamma = self._reshape_stats(self.gamma.value, ndim)
        inv = self._reshape_stats(inv_std, ndim)
        grad_xhat = grad_out * gamma
        if not training:
            # Inference statistics are constants w.r.t. the input.
            return grad_xhat * inv
        count = np.prod([grad_out.shape[a] for a in axes])
        mean_g = grad_xhat.mean(axis=axes, keepdims=True)
        mean_gx = (grad_xhat * x_hat).mean(axis=axes, keepdims=True)
        return inv * (grad_xhat - mean_g - x_hat * mean_gx)

    def parameters(self):
        return [self.gamma, self.beta]

    def buffers(self):
        return {
            f"{self.name}.running_mean": self.running_mean,
            f"{self.name}.running_var": self.running_var,
        }

    def output_shape(self, input_shape):
        return tuple(input_shape)
