"""Table 7: activation overlap for same-class vs different-class inputs.

Random MNIST input pairs run through LeNet-5: pairs from the same class
share more activated neurons than pairs from different classes,
supporting neuron coverage as a proxy for "rules exercised".
"""

from __future__ import annotations

from repro.analysis import class_pair_overlap
from repro.datasets import load_dataset
from repro.experiments.common import ExperimentResult
from repro.models import get_model

__all__ = ["run_class_overlap"]


def run_class_overlap(scale="small", seed=0, n_pairs=100, threshold=0.25,
                      use_cache=True):
    """Run the Table 7 experiment on the LeNet-5 zoo model (MNI_C3)."""
    dataset = load_dataset("mnist", scale=scale, seed=seed)
    model = get_model("MNI_C3", scale=scale, seed=seed, dataset=dataset,
                      use_cache=use_cache)
    n_pairs = min(n_pairs, dataset.x_test.shape[0] // 2)
    same, diff = class_pair_overlap(model, dataset, n_pairs=n_pairs,
                                    threshold=threshold, rng=seed + 7)
    result = ExperimentResult(
        experiment_id="table7",
        title="Average activated-neuron overlap, same vs different class",
        headers=["Pair type", "Total neurons", "Avg # activated",
                 "Avg overlap"],
        rows=[
            ["Diff. class", diff.total_neurons,
             round(diff.avg_activated, 1), round(diff.avg_overlap, 1)],
            ["Same class", same.total_neurons,
             round(same.avg_activated, 1), round(same.avg_overlap, 1)],
        ],
        paper_reference=("LeNet-5: avg overlap 45.9 (diff class) vs 74.2 "
                         "(same class) out of ~84 activated"),
    )
    result.notes.append(f"{n_pairs} random pairs per row, t = {threshold}")
    return result
