"""Coverage-based test-suite minimization.

Once DeepXplore has generated a pile of difference-inducing inputs, a
regression suite wants the *smallest* subset preserving the achieved
neuron coverage — the classic greedy set-cover reduction applied to the
paper's coverage metric.  Useful both for CI budgets and for human triage
(each kept test exercises rules no earlier test did).
"""

from __future__ import annotations

import numpy as np

from repro.coverage.neuron import scale_layerwise
from repro.errors import ConfigError

__all__ = ["minimize_suite"]


def _activation_matrix(network, inputs, threshold, scaled):
    acts = network.neuron_activations(np.asarray(inputs, dtype=np.float64))
    if scaled:
        acts = scale_layerwise(acts, network.neuron_layers)
    return acts > threshold


def minimize_suite(networks, inputs, threshold=0.0, scaled=True):
    """Greedy minimal subset of ``inputs`` with equal neuron coverage.

    Coverage is taken jointly over all ``networks`` (a test is valuable
    if it covers a new neuron in *any* model).  Returns ``(indices,
    covered_fraction)`` where ``indices`` orders tests by marginal
    coverage gain.
    """
    if not networks:
        raise ConfigError("need at least one network")
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.shape[0] == 0:
        return np.array([], dtype=int), 0.0
    active = np.concatenate(
        [_activation_matrix(net, inputs, threshold, scaled)
         for net in networks], axis=1)
    total_neurons = active.shape[1]
    target = active.any(axis=0)
    covered = np.zeros(total_neurons, dtype=bool)
    chosen = []
    remaining = set(range(inputs.shape[0]))
    while covered.sum() < target.sum():
        best, best_gain = None, 0
        # Iterate in sorted order so equal-gain ties always break toward
        # the lowest index: corpus distillation replays minimization on
        # reopened stores and must pick the same subset every time.
        for index in sorted(remaining):
            gain = int((active[index] & ~covered).sum())
            if gain > best_gain:
                best, best_gain = index, gain
        if best is None:
            break  # no test adds coverage (shouldn't happen)
        chosen.append(best)
        covered |= active[best]
        remaining.discard(best)
    return np.asarray(chosen, dtype=int), float(covered.mean())
