"""Parameter-update rules: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "get_optimizer",
           "StepDecay", "CosineDecay", "clip_gradients"]


def clip_gradients(parameters, max_norm):
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Stabilizes training of the deeper zoo
    models (mini-VGG19/ResNet) at higher learning rates.
    """
    if max_norm <= 0:
        raise ConfigError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for param in parameters:
        total += float((param.grad ** 2).sum())
    norm = total ** 0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            param.grad *= scale
    return norm


class Optimizer:
    """Base class; subclasses implement :meth:`step` over parameters."""

    def step(self, parameters):
        raise NotImplementedError

    def zero_grad(self, parameters):
        for param in parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr=0.01, momentum=0.0, weight_decay=0.0):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = {}

    def step(self, parameters):
        for param in parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.value)
                vel = self.momentum * vel - self.lr * grad
                self._velocity[id(param)] = vel
                param.value += vel
            else:
                param.value -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the workhorse for training the model zoo."""

    def __init__(self, lr=0.001, beta1=0.9, beta2=0.999, eps=1e-8,
                 weight_decay=0.0):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._state = {}
        self._t = 0

    def step(self, parameters):
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m, v = self._state.get(
                id(param), (np.zeros_like(param.value),
                            np.zeros_like(param.value)))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._state[id(param)] = (m, v)
            param.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class RMSProp(Optimizer):
    """RMSProp: per-parameter learning rates from a running square mean."""

    def __init__(self, lr=0.001, rho=0.9, eps=1e-8, weight_decay=0.0):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= rho < 1.0:
            raise ConfigError(f"rho must be in [0, 1), got {rho}")
        self.lr = float(lr)
        self.rho = float(rho)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._sq = {}

    def step(self, parameters):
        for param in parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            sq = self._sq.get(id(param))
            if sq is None:
                sq = np.zeros_like(param.value)
            sq = self.rho * sq + (1.0 - self.rho) * grad * grad
            self._sq[id(param)] = sq
            param.value -= self.lr * grad / (np.sqrt(sq) + self.eps)


class StepDecay:
    """Learning-rate schedule: multiply by ``gamma`` every ``every`` epochs.

    Attach to a Trainer via its ``schedule`` argument; called as
    ``schedule(optimizer, epoch)`` after each epoch.
    """

    def __init__(self, gamma=0.5, every=5):
        if not 0.0 < gamma <= 1.0:
            raise ConfigError(f"gamma must be in (0, 1], got {gamma}")
        if every < 1:
            raise ConfigError(f"every must be >= 1, got {every}")
        self.gamma = float(gamma)
        self.every = int(every)

    def __call__(self, optimizer, epoch):
        if epoch > 0 and epoch % self.every == 0:
            optimizer.lr *= self.gamma


class CosineDecay:
    """Cosine anneal from the initial lr to ``min_lr`` over ``total``."""

    def __init__(self, total, min_lr=0.0):
        if total < 1:
            raise ConfigError(f"total must be >= 1, got {total}")
        self.total = int(total)
        self.min_lr = float(min_lr)
        self._initial = None

    def __call__(self, optimizer, epoch):
        if self._initial is None:
            self._initial = optimizer.lr
        progress = min(epoch, self.total) / self.total
        cos = 0.5 * (1.0 + np.cos(np.pi * progress))
        optimizer.lr = self.min_lr + (self._initial - self.min_lr) * cos


def get_optimizer(spec, **kwargs):
    """Resolve an optimizer by name or pass an instance through."""
    if isinstance(spec, Optimizer):
        return spec
    mapping = {"sgd": SGD, "adam": Adam, "rmsprop": RMSProp}
    try:
        return mapping[spec](**kwargs)
    except KeyError:
        known = ", ".join(sorted(mapping))
        raise ConfigError(f"unknown optimizer {spec!r}; known: {known}") from None
