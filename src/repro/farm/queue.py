"""Bounded, journaled job queue with retry-backoff and per-store FIFO.

The farm's scheduling core, deliberately free of threads and sockets so
every policy here is unit-testable with a fake clock:

* **Backpressure** — ``submit`` rejects with
  :class:`QueueSaturatedError` (carrying a ``retry_after`` hint) once
  ``queued + running`` reaches capacity.  Counting *both* makes
  saturation deterministic: it cannot depend on how fast workers drain.
* **Journal** — every mutation lands in one atomic JSON file, so a
  ``kill -9`` of the daemon loses at most nothing: on reload, jobs
  found ``running`` were in flight when the process died and go back to
  ``queued`` (same attempt count — a crash of the *daemon* is not a
  strike against the *job*; the store's own checkpoint makes the re-run
  converge).
* **Retry with backoff** — a failed attempt re-queues the job gated by
  ``not_before = now + backoff_base * 2**(attempts-1)`` until
  ``max_attempts``, then parks it as ``failed`` with the error string.
* **Per-store serialization** — ``claim`` never hands out a job whose
  store another in-flight job owns; corpus stores are single-writer,
  and within one store jobs run in submit order.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import FarmError
from repro.farm.jobs import Job, normalize_spec
from repro.utils.atomicio import atomic_write_json
from repro.utils.faults import fault_point

__all__ = ["JobQueue", "QueueSaturatedError", "UnknownJobError"]

JOURNAL_VERSION = 1


class QueueSaturatedError(FarmError):
    """The queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, capacity, retry_after):
        self.capacity = int(capacity)
        self.retry_after = float(retry_after)
        super().__init__(
            f"farm queue is saturated ({capacity} job(s) in flight); "
            f"retry in {self.retry_after:.1f}s")


class UnknownJobError(FarmError):
    """No job with the requested id (mistyped, or another root's id)."""

    def __init__(self, job_id):
        super().__init__(f"unknown job id {job_id!r}")


class JobQueue:
    """In-memory queue + on-disk journal (see module docstring).

    Not thread-safe by itself: the daemon serializes access under its
    own lock.  ``clock`` is injectable for backoff tests.
    """

    def __init__(self, journal_path, capacity=8, max_attempts=3,
                 backoff_base=1.0, clock=time.time):
        if capacity < 1:
            raise FarmError(f"queue capacity must be >= 1, got {capacity}")
        if max_attempts < 1:
            raise FarmError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.journal_path = journal_path
        self.capacity = int(capacity)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.clock = clock
        self._jobs = {}              # job_id -> Job, insertion-ordered
        self._counter = 0
        self._load()

    # -- journal ------------------------------------------------------------
    def _load(self):
        if not os.path.exists(self.journal_path):
            return
        with open(self.journal_path, "r", encoding="utf-8") as handle:
            journal = json.load(handle)
        if journal.get("version") != JOURNAL_VERSION:
            raise FarmError(
                f"job journal at {self.journal_path} has version "
                f"{journal.get('version')!r}; this build reads "
                f"{JOURNAL_VERSION}")
        self._counter = int(journal.get("counter", 0))
        for record in journal.get("jobs", []):
            job = Job.from_dict(record)
            if job.status == "running":
                # In flight when the previous daemon died; the store
                # checkpoint holds its progress, so simply re-queue.
                job.status = "queued"
            self._jobs[job.job_id] = job

    def _save(self):
        fault_point("farm.journal.mid")
        atomic_write_json(self.journal_path, {
            "version": JOURNAL_VERSION,
            "counter": self._counter,
            "jobs": [job.to_dict() for job in self._jobs.values()],
        })

    # -- introspection ------------------------------------------------------
    def jobs(self, status=None):
        if status is None:
            return list(self._jobs.values())
        return [j for j in self._jobs.values() if j.status == status]

    def get(self, job_id):
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def in_flight(self):
        """Jobs counting against capacity (queued or running)."""
        return [j for j in self._jobs.values()
                if j.status in ("queued", "running")]

    def active_stores(self):
        return {j.store for j in self._jobs.values()
                if j.status == "running"}

    # -- lifecycle ----------------------------------------------------------
    def submit(self, spec):
        """Enqueue a normalized spec; returns the :class:`Job`.

        Raises :class:`QueueSaturatedError` at capacity — the caller
        (CLI, client library) is expected to surface the ``retry_after``
        hint rather than spin.
        """
        spec = normalize_spec(spec)
        if len(self.in_flight()) >= self.capacity:
            # Scale the hint with the backlog: a deeper queue takes
            # proportionally longer to drain one slot.
            retry_after = self.backoff_base * max(1, len(self.in_flight()))
            raise QueueSaturatedError(self.capacity, retry_after)
        self._counter += 1
        job = Job(job_id=f"job-{self._counter:06d}", spec=spec,
                  submitted=float(self.clock()))
        self._jobs[job.job_id] = job
        self._save()
        return job

    def claim(self):
        """Hand out the next runnable job (marked ``running``), or None.

        Runnable: queued, past its backoff gate, and not targeting a
        store some running job already owns.  First match in insertion
        order keeps per-store FIFO.
        """
        now = float(self.clock())
        busy = self.active_stores()
        for job in self._jobs.values():
            if job.status != "queued" or job.store in busy:
                continue
            if job.not_before > now:
                continue
            job.status = "running"
            job.attempts += 1
            self._save()
            return job
        return None

    def next_wakeup(self):
        """Earliest ``not_before`` among gated queued jobs (or None)."""
        gates = [j.not_before for j in self._jobs.values()
                 if j.status == "queued" and j.not_before > self.clock()]
        return min(gates) if gates else None

    def mark_done(self, job_id, result=None):
        job = self.get(job_id)
        job.status = "done"
        job.error = None
        job.result = dict(result or {})
        self._save()

    def mark_failed(self, job_id, error, permanent=False):
        """Record a failed attempt: backoff-requeue or park as failed.

        ``permanent`` skips the retries — for deterministic rejections
        (a bad spec, a session-identity mismatch) that would fail
        identically on every attempt.
        """
        job = self.get(job_id)
        if permanent or job.attempts >= self.max_attempts:
            job.status = "failed"
            job.error = str(error)
        else:
            job.status = "queued"
            job.error = str(error)
            job.not_before = (float(self.clock())
                              + self.backoff_base * 2 ** (job.attempts - 1))
        self._save()

    def release(self, job_id):
        """Put a running job back to queued, not counting an attempt.

        The graceful-drain path: the daemon stopped the job at a wave
        boundary, its progress is in the store checkpoint, and the next
        daemon continues it — that is not a failure.
        """
        job = self.get(job_id)
        job.status = "queued"
        job.attempts = max(0, job.attempts - 1)
        self._save()
