"""Ablation: rule-based projection (the paper's choice) vs Lagrangian
soft box constraint (the alternative §4.2 mentions).

Compares differences found and worst box violation on MNIST.
"""

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import DeepXplore, PAPER_HYPERPARAMS, Unconstrained
from repro.datasets import load_dataset
from repro.extensions import SoftBoxConstraint
from repro.models import get_trio
from repro.utils.tables import render_table


@pytest.mark.parametrize("mode", ["hard-clip", "soft-penalty"])
def test_ablation_soft_constraints(benchmark, mode):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(20, np.random.default_rng(41))
    hp = PAPER_HYPERPARAMS["mnist"]
    constraint = (Unconstrained() if mode == "hard-clip"
                  else SoftBoxConstraint(mu=10.0))

    def run():
        engine = DeepXplore(models, hp, constraint, rng=43)
        return engine.run(seeds)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = 0.0
    for test in result.tests:
        worst = max(worst, float(np.maximum(test.x - 1.0, 0.0).max()),
                    float(np.maximum(-test.x, 0.0).max()))
    print()
    print(render_table(
        ["mode", "# diffs", "worst box violation"],
        [[mode, result.difference_count, f"{worst:.3f}"]],
        title="[ablation] hard projection vs Lagrangian penalty"))
