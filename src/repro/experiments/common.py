"""Shared experiment infrastructure.

Each experiment module exposes ``run_*`` functions that return an
:class:`ExperimentResult` — a structured table (plus optional plot-style
series) mirroring one table or figure of the paper.  Rendering is plain
text so benchmark logs read like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import make_engine
from repro.datasets.base import resolve_scale
from repro.utils.tables import render_table

__all__ = ["ExperimentResult", "seeds_for_scale", "SEED_BUDGETS",
           "make_engine"]

#: How many seed inputs experiments draw at each scale.  The paper uses
#: 2,000 seeds for Table 2; ``full`` keeps that order of magnitude within
#: synthetic test-set sizes, the smaller scales keep CI and benchmarks fast.
SEED_BUDGETS = {"smoke": 20, "small": 80, "full": 400}


def seeds_for_scale(scale, maximum=None):
    """Seed budget for a named scale, optionally capped."""
    resolve_scale(scale)
    budget = SEED_BUDGETS[scale]
    if maximum is not None:
        budget = min(budget, maximum)
    return budget


@dataclass
class ExperimentResult:
    """One reproduced table/figure: metadata + rows (+ optional series)."""

    experiment_id: str          # e.g. "table2", "figure9"
    title: str
    headers: list
    rows: list = field(default_factory=list)
    series: dict = field(default_factory=dict)   # name -> (xs, ys) for figures
    notes: list = field(default_factory=list)
    paper_reference: str = ""   # what the paper reported, for EXPERIMENTS.md

    def render(self):
        """Human-readable table plus notes."""
        parts = [render_table(self.headers, self.rows,
                              title=f"[{self.experiment_id}] {self.title}")]
        for name, (xs, ys) in self.series.items():
            points = ", ".join(f"({x}, {y:.3g})" for x, y in zip(xs, ys))
            parts.append(f"series {name}: {points}")
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)
