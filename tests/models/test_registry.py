"""Model registry: zoo structure, caching, accuracy floors."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models import (MODEL_ZOO, TRIOS, get_model, get_model_payload,
                          get_trio, get_trio_payloads, model_accuracy,
                          zoo_names)
from repro.nn import network_from_payload


def test_zoo_has_fifteen_models():
    assert len(zoo_names()) == 15
    assert set(MODEL_ZOO) == set(zoo_names())


def test_trios_cover_all_datasets():
    assert set(TRIOS) == {"mnist", "imagenet", "driving", "pdf", "drebin"}
    for trio in TRIOS.values():
        assert len(trio) == 3


def test_unknown_model_rejected():
    with pytest.raises(ConfigError):
        get_model("MNI_C9")
    with pytest.raises(ConfigError):
        get_trio("cifar")


def test_cached_model_deterministic(mnist_smoke):
    a = get_model("MNI_C1", scale="smoke", seed=0, dataset=mnist_smoke)
    b = get_model("MNI_C1", scale="smoke", seed=0, dataset=mnist_smoke)
    x = mnist_smoke.x_test[:4]
    np.testing.assert_array_equal(a.predict(x), b.predict(x))


def test_model_payload_rebuilds_trained_model(mnist_smoke):
    payload = get_model_payload("MNI_C1", scale="smoke", seed=0,
                                dataset=mnist_smoke)
    rebuilt = network_from_payload(payload)
    original = get_model("MNI_C1", scale="smoke", seed=0,
                         dataset=mnist_smoke)
    x = mnist_smoke.x_test[:4]
    np.testing.assert_array_equal(rebuilt.predict(x), original.predict(x))


def test_trio_payloads_cover_trio(mnist_smoke):
    payloads = get_trio_payloads("mnist", scale="smoke", seed=0,
                                 dataset=mnist_smoke)
    names = [p["config"]["name"] for p in payloads]
    assert names == TRIOS["mnist"]


def test_trio_models_differ(mnist_trio, mnist_smoke):
    """Independently initialized models must not be identical — the
    premise of differential testing."""
    x = mnist_smoke.x_test[:16]
    p1, p2, p3 = (m.predict(x) for m in mnist_trio)
    assert not np.allclose(p1, p2)
    assert not np.allclose(p2, p3)


def test_smoke_models_learn_something(mnist_trio, mnist_smoke):
    for model in mnist_trio:
        acc = model_accuracy(model, mnist_smoke)
        assert acc > 0.5, f"{model.name} barely above chance: {acc}"


def test_driving_models_fit(driving_trio, driving_smoke):
    for model in driving_trio:
        assert model_accuracy(model, driving_smoke) > 0.85  # 1-MSE


def test_malware_models_accurate(pdf_trio, pdf_smoke, drebin_trio,
                                 drebin_smoke):
    for model in pdf_trio:
        assert model_accuracy(model, pdf_smoke) > 0.85
    for model in drebin_trio:
        assert model_accuracy(model, drebin_smoke) > 0.85


def test_model_names_match_zoo(mnist_trio):
    assert [m.name for m in mnist_trio] == ["MNI_C1", "MNI_C2", "MNI_C3"]
