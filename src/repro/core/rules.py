"""The ascent rule library: per-iteration update strategies for line 14.

PR 5 collapsed the repo onto one ascent loop (:func:`repro.core.engine.
run_ascent`) whose per-iteration update is a pluggable
:class:`AscentRule`.  This module is where the rules live — adding a
strategy means adding a rule here, never an engine:

* :class:`VanillaRule` — the paper's line 14 (``x += s * grad``).
* :class:`MomentumRule` — heavy-ball (``v = beta*v + grad``).
* :class:`NesterovRule` — Nesterov look-ahead momentum
  (``v = beta*v + grad``, step along ``grad + beta*v``).
* :class:`AdamRule` — per-seed first/second-moment adaptive steps
  (Kingma & Ba) with bias correction.
* :class:`DeepFoolRule` — decision-boundary seeking (Moosavi-Dezfooli
  et al.): pairwise output/gradient differences against the seed class
  on the per-seed *target* model's tape, one closed-form step toward
  the nearest class boundary, times an overshoot factor.
* :class:`AdaptiveStepRule` — a decorator that scales the effective
  step size per seed from the fuzz scheduler's energy/novelty feedback
  (dry seeds escalate, hot/novel seeds tread carefully).

The rule contract (enforced for every registered rule by
``tests/core/test_rule_conformance.py``; the laws are documented in
docs/ARCHITECTURE.md):

* **State slicing** — per-seed state is row-aligned with the active
  batch; :meth:`AscentRule.compact` slices every state row exactly like
  the engine slices ``x``, so a surviving seed's trajectory is
  bit-identical to ascending it alone.
* **Identity** — :meth:`AscentRule.identity` is a deterministic string
  that round-trips through :func:`rule_from_identity` and JSON; fuzz
  corpora persist it as part of their resume contract.
* **Clone** — :meth:`AscentRule.clone` returns an independent copy
  (campaign shards and fuzz workers each ascend under their own);
  a bound :class:`AscentContext` is never carried into the copy.
* **State round-trip** — :meth:`AscentRule.state_dict` /
  :meth:`AscentRule.load_state_dict` round-trip the per-seed state
  through JSON bit-identically (float64).

Rules that need more than the joint gradient (DeepFool's pairwise
boundary search) read the engine's per-iteration state through the
:class:`AscentContext` the engine binds before ascending; they declare
``needs_context = True`` and may switch the engine's own objective
backwards off entirely (``consumes_gradient = False``).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.errors import ConfigError

__all__ = ["AscentRule", "AscentContext", "VanillaRule", "MomentumRule",
           "NesterovRule", "AdamRule", "DeepFoolRule", "AdaptiveStepRule",
           "make_rule", "rule_from_identity", "ASCENT_RULES",
           "DEFAULT_MOMENTUM_BETA", "DEFAULT_DEEPFOOL_OVERSHOOT"]

DEFAULT_MOMENTUM_BETA = 0.9
DEFAULT_DEEPFOOL_OVERSHOOT = 0.02

#: Scheduler energies below this floor stop growing the adaptive step
#: (matches the scheduler's retirement epsilon, 1/64).
_ENERGY_FLOOR = 1.0 / 64.0


class AscentContext:
    """Live view of the engine's per-iteration ascent state.

    The engine binds one context per ascent (:meth:`AscentRule.bind`)
    and keeps its underlying state dict current every iteration, so a
    boundary-aware rule always sees the tapes, rows, targets, and input
    batch of *this* iteration.  ``constrain`` is the engine's
    domain-constraint rewrite (per-seed instances included), so rule
    directions obey the same physical-realism rules the joint gradient
    does.
    """

    __slots__ = ("_state", "step", "_constrain", "task")

    def __init__(self, state, step, constrain, task):
        self._state = state
        self.step = float(step)
        self._constrain = constrain
        self.task = task

    @property
    def tapes(self):
        """One :class:`~repro.nn.tape.ForwardPass` per model, recorded
        over the latest forward (may still cover just-retired rows)."""
        return self._state["tapes"]

    @property
    def rows(self):
        """Active-sample positions within the tapes' batch."""
        return self._state["rows"]

    @property
    def targets(self):
        """Per-active-sample target model index (the paper's line 6)."""
        return self._state["targets"]

    @property
    def seed_classes(self):
        """Per-active-sample seed class (classification only)."""
        return self._state["seed_classes"]

    @property
    def x(self):
        """The current active input batch."""
        return self._state["x"]

    def constrain(self, grad, x):
        """Apply the engine's domain constraints to a direction."""
        return self._constrain(grad, x)


# -- the contract ---------------------------------------------------------------
class AscentRule:
    """Per-iteration update strategy for the ascent loop.

    A rule turns the constrained, normalized gradient of the current
    iteration into the step *direction*.  Rules may keep per-seed state
    across iterations (one row per active seed); the loop tells them
    when a new batch starts (:meth:`reset`) and when finished seeds
    retire from it (:meth:`compact`), so the state stays row-aligned
    with the active batch.

    Rules are cheap value objects: engines, campaigns, and fuzz
    sessions :meth:`clone` them freely (shards and worker processes
    each ascend under their own copy).

    Class-level capability flags (engines consult them):

    ``consumes_gradient``
        The rule uses the engine-computed joint (obj1 + λ2·obj2)
        gradient.  ``False`` lets the engine skip those backwards
        entirely — the rule derives its own direction from the bound
        :class:`AscentContext`.
    ``absolute_step``
        :meth:`update` returns an absolute displacement, applied as-is;
        the default ``False`` scales the returned direction by the
        engine's step size ``s``.
    ``needs_context``
        The rule requires an :class:`AscentContext` to be bound before
        :meth:`update` (engines always bind one; plain
        :func:`~repro.core.engine.run_ascent` callers must do it
        themselves for such rules).
    ``supports_regression``
        The rule can drive regression tapes (DeepFool is
        classification-only).
    ``accepts_seed_scales``
        The rule honours per-seed step scales
        (:meth:`set_seed_scales`); engines refuse ``seed_scales`` for
        rules that don't.
    """

    name = "rule"
    consumes_gradient = True
    absolute_step = False
    needs_context = False
    supports_regression = True
    accepts_seed_scales = False

    _context = None

    def bind(self, context):
        """Attach this ascent's :class:`AscentContext` (engine-called)."""
        self._context = context

    def reset(self, x):
        """A new active batch ``x`` starts ascending; allocate state."""

    def update(self, grad):
        """Return the step direction for this iteration's gradient."""
        return grad

    def compact(self, keep):
        """Finished seeds retired: keep only state rows where ``keep``."""

    def clone(self):
        """Independent copy with the same configuration.

        A bound context is engine-owned live state, never part of the
        rule's value; the copy starts unbound.
        """
        context, self._context = self._context, None
        try:
            copied = copy.deepcopy(self)
        finally:
            self._context = context
        return copied

    def identity(self):
        """Deterministic-identity string (part of a fuzz corpus's
        resume contract: resuming under a different rule is an error).
        Round-trips through :func:`rule_from_identity`."""
        return self.name

    def state_dict(self):
        """JSON-serializable snapshot of the per-seed ascent state."""
        return {}

    def load_state_dict(self, state):
        """Restore a :meth:`state_dict` snapshot bit-identically."""

    # -- helpers ------------------------------------------------------------
    def _require_context(self):
        if self._context is None:
            raise ConfigError(
                f"the {self.name} rule needs the engine's ascent context; "
                "run it inside an AscentEngine (or bind() one first)")
        return self._context

    @staticmethod
    def _array_state(value):
        return None if value is None else np.asarray(value).tolist()

    @staticmethod
    def _array_from_state(value, like=None):
        if value is None:
            return None
        dtype = like.dtype if like is not None else np.float64
        return np.asarray(value, dtype=dtype)


class VanillaRule(AscentRule):
    """The paper's line 14: step straight along the gradient."""

    name = "vanilla"


class MomentumRule(AscentRule):
    """Heavy-ball ascent: ``v = beta*v + grad``; step along ``v``.

    Plain gradient ascent can oscillate around narrow difference
    regions, especially at large step sizes (the paper's Table 9 notes
    "larger s may lead to oscillation around the local optimum");
    momentum damps that oscillation.  ``beta = 0`` reduces exactly to
    :class:`VanillaRule`.
    """

    name = "momentum"

    def __init__(self, beta=DEFAULT_MOMENTUM_BETA):
        if not 0.0 <= beta < 1.0:
            raise ConfigError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)
        self._velocity = None

    def reset(self, x):
        self._velocity = np.zeros_like(x)

    def update(self, grad):
        self._velocity = self.beta * self._velocity + grad
        return self._velocity

    def compact(self, keep):
        self._velocity = self._velocity[keep]

    def identity(self):
        # repr round-trips the float exactly — two distinct betas can
        # never alias to one identity string (%g would collide past six
        # significant digits and let a mismatched resume through).
        return f"momentum(beta={self.beta!r})"

    def state_dict(self):
        return {"velocity": self._array_state(self._velocity)}

    def load_state_dict(self, state):
        self._velocity = self._array_from_state(state["velocity"],
                                                like=self._velocity)


class NesterovRule(AscentRule):
    """Nesterov look-ahead momentum.

    Same velocity recursion as heavy-ball (``v = beta*v + grad``) but
    the step follows the *look-ahead* direction ``grad + beta*v`` —
    the gradient correction is applied after the momentum extrapolation,
    which reacts one iteration earlier when the ascent overshoots a
    narrow difference region.  ``beta = 0`` reduces exactly to
    :class:`VanillaRule`.
    """

    name = "nesterov"

    def __init__(self, beta=DEFAULT_MOMENTUM_BETA):
        if not 0.0 <= beta < 1.0:
            raise ConfigError(f"beta must be in [0, 1), got {beta}")
        self.beta = float(beta)
        self._velocity = None

    def reset(self, x):
        self._velocity = np.zeros_like(x)

    def update(self, grad):
        self._velocity = self.beta * self._velocity + grad
        return grad + self.beta * self._velocity

    def compact(self, keep):
        self._velocity = self._velocity[keep]

    def identity(self):
        return f"nesterov(beta={self.beta!r})"

    def state_dict(self):
        return {"velocity": self._array_state(self._velocity)}

    def load_state_dict(self, state):
        self._velocity = self._array_from_state(state["velocity"],
                                                like=self._velocity)


class AdamRule(AscentRule):
    """Adam ascent: per-seed first/second moments with bias correction.

    The incoming gradient is already RMS-normalized per sample, so the
    second-moment rescaling mostly evens out *within*-sample magnitude
    differences — pixels with consistently small gradients step as far
    as loud ones, which helps on plateaus where vanilla ascent stalls.
    All moment state is per-seed (one row each) and compacts with the
    active batch; the bias-correction step count is shared, since every
    seed in a batch starts ascending at iteration one together.
    """

    name = "adam"

    def __init__(self, beta1=0.9, beta2=0.999, eps=1e-8):
        if not 0.0 <= beta1 < 1.0:
            raise ConfigError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ConfigError(f"beta2 must be in [0, 1), got {beta2}")
        if eps <= 0.0:
            raise ConfigError(f"eps must be positive, got {eps}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = None
        self._v = None
        self._t = 0

    def reset(self, x):
        self._m = np.zeros_like(x)
        self._v = np.zeros_like(x)
        self._t = 0

    def update(self, grad):
        self._t += 1
        self._m = self.beta1 * self._m + (1.0 - self.beta1) * grad
        self._v = self.beta2 * self._v + (1.0 - self.beta2) * grad * grad
        m_hat = self._m / (1.0 - self.beta1 ** self._t)
        v_hat = self._v / (1.0 - self.beta2 ** self._t)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def compact(self, keep):
        self._m = self._m[keep]
        self._v = self._v[keep]

    def identity(self):
        return (f"adam(beta1={self.beta1!r},beta2={self.beta2!r},"
                f"eps={self.eps!r})")

    def state_dict(self):
        return {"m": self._array_state(self._m),
                "v": self._array_state(self._v),
                "t": int(self._t)}

    def load_state_dict(self, state):
        self._m = self._array_from_state(state["m"], like=self._m)
        self._v = self._array_from_state(state["v"], like=self._v)
        self._t = int(state["t"])


class DeepFoolRule(AscentRule):
    """Step toward the target model's nearest decision boundary.

    Per active seed the engine has already drawn a *target* model (the
    paper's line 6: the model obj1 pushes away from the agreed class).
    DeepFool observes that the minimal disagreement-inducing
    perturbation is the one crossing that model's nearest class
    boundary, and that a linearization of each boundary gives it in
    closed form (Moosavi-Dezfooli et al., algorithm 2; the pairwise
    shape follows foolbox's implementation): for every candidate class
    ``k`` of seed class ``c``,

    * ``dl_k = f_k(x) - f_c(x)`` (output difference, from the tape),
    * ``dg_k = ∇f_k(x) - ∇f_c(x)`` (gradient difference, one backward
      per candidate slot via the tape's per-sample seed matrices),

    the linearized distance to boundary ``k`` is ``|dl_k| / ||dg_k||``,
    and the nearest boundary ``k*`` is crossed with the absolute step
    ``w = (|dl_k*| / ||dg_k*||²) · dg_k*``, scaled by ``1 + overshoot``
    so the iterate lands on the far side rather than exactly on the
    (measure-zero) boundary.  Gradient differences are rewritten by the
    engine's domain constraints *before* the distances are measured, so
    the rule picks the boundary nearest within the constrained
    subspace, not one it is never allowed to walk toward.

    The rule ignores the engine's joint gradient entirely
    (``consumes_gradient = False`` — the obj1/obj2 backwards are
    skipped) and returns absolute displacements (``absolute_step``):
    each iteration re-linearizes at the new iterate, so ascent reaches
    a difference in a handful of steps where fixed-step rules need
    dozens.  Coverage is untouched: tapes still fold into the trackers
    exactly as for every other rule.  Classification only.

    ``candidates`` bounds the boundary search to the ``candidates``
    highest-output non-seed classes (one backward per candidate per
    iteration); ``None`` searches every class boundary.
    """

    name = "deepfool"
    consumes_gradient = False
    absolute_step = True
    needs_context = True
    supports_regression = False

    def __init__(self, overshoot=DEFAULT_DEEPFOOL_OVERSHOOT,
                 candidates=None):
        if overshoot < 0.0:
            raise ConfigError(f"overshoot must be >= 0, got {overshoot}")
        if candidates is not None and int(candidates) < 1:
            raise ConfigError(f"candidates must be >= 1, got {candidates}")
        self.overshoot = float(overshoot)
        self.candidates = None if candidates is None else int(candidates)

    def identity(self):
        if self.candidates is None:
            return f"deepfool(overshoot={self.overshoot!r})"
        return (f"deepfool(overshoot={self.overshoot!r},"
                f"candidates={self.candidates})")

    def update(self, grad):
        ctx = self._require_context()
        tapes = ctx.tapes
        rows = np.asarray(ctx.rows)
        targets = np.asarray(ctx.targets)
        classes = np.asarray(ctx.seed_classes)
        x = ctx.x
        n = x.shape[0]
        samples = np.arange(n)
        flat = (n, -1)
        shape_tail = (n,) + (1,) * (x.ndim - 1)

        # Per-sample outputs and seed-class gradients of each sample's
        # *own* target model — one backward per model present.
        by_model = {int(k): np.flatnonzero(targets == k)
                    for k in np.unique(targets)}
        n_classes = tapes[0].outputs().shape[1]
        outs = np.empty((n, n_classes), dtype=x.dtype)
        g_seed = np.empty_like(x)
        for k, sel in by_model.items():
            tape = tapes[k]
            outs[sel] = tape.outputs()[rows[sel]]
            seed = np.zeros((tape.batch_size, n_classes), dtype=tape.dtype)
            seed[rows[sel], classes[sel]] = 1.0
            g_seed[sel] = tape.gradient_of_output(seed)[rows[sel]]
        f_seed = outs[samples, classes]

        # Candidate classes per sample: non-seed classes by descending
        # output, optionally truncated to the closest few.
        order = np.argsort(-outs, axis=1, kind="stable")
        cand = np.empty((n, n_classes - 1), dtype=int)
        for i in samples:   # drop the seed class from each row's order
            row = order[i]
            cand[i] = row[row != classes[i]]
        if self.candidates is not None:
            cand = cand[:, :self.candidates]

        best_dist = np.full(n, np.inf)
        best_step = np.zeros_like(x)
        for j in range(cand.shape[1]):
            cand_j = cand[:, j]
            g_cand = np.empty_like(x)
            for k, sel in by_model.items():
                tape = tapes[k]
                seed = np.zeros((tape.batch_size, n_classes),
                                dtype=tape.dtype)
                seed[rows[sel], cand_j[sel]] = 1.0
                g_cand[sel] = tape.gradient_of_output(seed)[rows[sel]]
            dl = outs[samples, cand_j] - f_seed
            dg = ctx.constrain(g_cand - g_seed, x)
            norm_sq = (dg.reshape(flat) ** 2).sum(axis=1)
            norm = np.sqrt(norm_sq)
            dist = np.abs(dl) / (norm + 1e-12)
            better = (dist < best_dist) & (norm > 1e-12)
            if not better.any():
                continue
            scale = (np.abs(dl) + 1e-6) / (norm_sq + 1e-12)
            step = scale.reshape(shape_tail) * dg
            best_dist = np.where(better, dist, best_dist)
            best_step[better] = step[better]
        return (1.0 + self.overshoot) * best_step


class AdaptiveStepRule(AscentRule):
    """Decorator rule: per-seed step-size scaling from fuzz feedback.

    Wraps any non-absolute rule and multiplies its per-seed directions
    by a scale row, so seed *i* effectively ascends with step
    ``scale_i * s``.  The scales come from the fuzz scheduler's
    energy bookkeeping (:meth:`scales_from_energy`): a seed's energy
    already folds together its dry-visit decay and the novelty of the
    waves it ran in, so

        ``scale = clip((1 / energy) ** gamma, 1/max_scale, max_scale)``

    sends decayed seeds (repeatedly visited without yielding) up the
    step ladder to escape their plateau, while novelty-boosted seeds
    (energy above 1) step *more* carefully through their productive
    region.  A fresh seed (energy 1) gets exactly the base step, so a
    first wave under ``adaptive(vanilla, ...)`` is bit-identical to
    vanilla.

    Scales are per-``run`` inputs (:meth:`set_seed_scales`, threaded
    from ``engine.run(seed_scales=...)`` through campaign shards); when
    none are set every seed scales by 1.  The scale row compacts with
    the active batch exactly like any other per-seed state.
    """

    name = "adaptive"
    accepts_seed_scales = True

    def __init__(self, inner=None, gamma=0.5, max_scale=4.0):
        inner = inner if inner is not None else VanillaRule()
        if not isinstance(inner, AscentRule):
            raise ConfigError("inner must be an AscentRule instance")
        if isinstance(inner, AdaptiveStepRule):
            raise ConfigError("adaptive rules do not nest")
        if inner.absolute_step:
            raise ConfigError(
                f"the {inner.name} rule takes absolute steps; per-seed "
                "step scaling does not apply to it")
        if gamma < 0.0:
            raise ConfigError(f"gamma must be >= 0, got {gamma}")
        if max_scale < 1.0:
            raise ConfigError(f"max_scale must be >= 1, got {max_scale}")
        self.inner = inner
        self.gamma = float(gamma)
        self.max_scale = float(max_scale)
        # Capability flags follow the wrapped rule.
        self.consumes_gradient = inner.consumes_gradient
        self.needs_context = inner.needs_context
        self.supports_regression = inner.supports_regression
        self._scales = None       # pending per-run scales (seed-aligned)
        self._row_scales = None   # active, row-aligned with the batch

    def bind(self, context):
        super().bind(context)
        self.inner.bind(context)

    def set_seed_scales(self, scales):
        """Provide the per-seed scales for the next :meth:`reset`
        (``None`` means every seed scales by 1)."""
        self._scales = (None if scales is None
                        else np.asarray(scales, dtype=np.float64))

    def scales_from_energy(self, energies):
        """Map scheduler energies to per-seed step scales."""
        energy = np.maximum(np.asarray(energies, dtype=np.float64),
                            _ENERGY_FLOOR)
        return np.clip((1.0 / energy) ** self.gamma,
                       1.0 / self.max_scale, self.max_scale)

    def reset(self, x):
        if self._scales is None:
            self._row_scales = np.ones(x.shape[0], dtype=np.float64)
        else:
            if self._scales.shape[0] != x.shape[0]:
                raise ConfigError(
                    f"got {self._scales.shape[0]} seed scale(s) for a "
                    f"batch of {x.shape[0]}")
            self._row_scales = self._scales.copy()
        self.inner.reset(x)

    def update(self, grad):
        direction = self.inner.update(grad)
        shape = (direction.shape[0],) + (1,) * (direction.ndim - 1)
        return direction * self._row_scales.reshape(shape).astype(
            direction.dtype)

    def compact(self, keep):
        self._row_scales = self._row_scales[keep]
        self.inner.compact(keep)

    def identity(self):
        return (f"adaptive({self.inner.identity()},gamma={self.gamma!r},"
                f"max_scale={self.max_scale!r})")

    def state_dict(self):
        return {"scales": self._array_state(self._row_scales),
                "inner": self.inner.state_dict()}

    def load_state_dict(self, state):
        self._row_scales = self._array_from_state(state["scales"])
        self.inner.load_state_dict(state["inner"])


# -- registry -------------------------------------------------------------------
#: Rule names accepted by :func:`make_rule` (and the CLI's ``--ascent``).
ASCENT_RULES = ("vanilla", "momentum", "nesterov", "adam", "deepfool",
                "adaptive")

_RULE_CLASSES = {
    "vanilla": VanillaRule,
    "momentum": MomentumRule,
    "nesterov": NesterovRule,
    "adam": AdamRule,
    "deepfool": DeepFoolRule,
    "adaptive": AdaptiveStepRule,
}


def make_rule(ascent="vanilla", beta=None, overshoot=None):
    """Resolve an ``--ascent``-style spec into an :class:`AscentRule`.

    ``ascent`` may already be a rule instance (returned unchanged; then
    the flag arguments must be unset), or one of :data:`ASCENT_RULES`.
    ``beta`` applies to the momentum and nesterov rules, ``overshoot``
    to deepfool; passing a flag to a rule that does not accept it is a
    :class:`~repro.errors.ConfigError` (the CLI surfaces it as a
    one-line error).
    """
    if isinstance(ascent, AscentRule):
        if beta is not None or overshoot is not None:
            raise ConfigError(
                "rule flags cannot be combined with an explicit rule "
                "instance")
        return ascent
    if ascent not in _RULE_CLASSES:
        raise ConfigError(
            f"unknown ascent rule {ascent!r}; known: "
            f"{', '.join(ASCENT_RULES)}")
    if beta is not None and ascent not in ("momentum", "nesterov"):
        raise ConfigError(
            f"beta only applies to the momentum and nesterov rules, "
            f"not {ascent!r}")
    if overshoot is not None and ascent != "deepfool":
        raise ConfigError(
            f"overshoot only applies to the deepfool rule, not {ascent!r}")
    if ascent in ("momentum", "nesterov"):
        beta = DEFAULT_MOMENTUM_BETA if beta is None else beta
        return _RULE_CLASSES[ascent](beta)
    if ascent == "deepfool":
        overshoot = (DEFAULT_DEEPFOOL_OVERSHOOT if overshoot is None
                     else overshoot)
        return DeepFoolRule(overshoot)
    return _RULE_CLASSES[ascent]()


def _split_args(text):
    """Split ``a,b(c,d),e`` at top-level commas only."""
    parts, depth, start = [], 0, 0
    for i, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    tail = text[start:]
    if tail:
        parts.append(tail)
    return parts


def rule_from_identity(identity):
    """Reconstruct a rule from its :meth:`AscentRule.identity` string.

    The inverse of ``identity()`` for every registered rule:
    ``rule_from_identity(rule.identity()).identity() ==
    rule.identity()``.  Raises :class:`~repro.errors.ConfigError` on
    unknown names or malformed arguments.
    """
    identity = str(identity).strip()
    name, sep, rest = identity.partition("(")
    if sep and not rest.endswith(")"):
        raise ConfigError(f"malformed rule identity {identity!r}")
    if name not in _RULE_CLASSES:
        raise ConfigError(
            f"unknown ascent rule identity {identity!r}; known: "
            f"{', '.join(ASCENT_RULES)}")
    args, kwargs = [], {}
    for part in _split_args(rest[:-1]) if sep else []:
        key, eq, value = part.partition("=")
        if not eq or "(" in key:
            # No top-level "=" means a positional inner rule, possibly
            # with its own kwargs inside parens (e.g. momentum(beta=0.7)).
            args.append(rule_from_identity(part))
            continue
        key = key.strip()
        try:
            kwargs[key] = (int(value) if key == "candidates"
                           else float(value))
        except ValueError:
            raise ConfigError(
                f"malformed rule identity {identity!r}: bad value for "
                f"{key!r}") from None
    try:
        return _RULE_CLASSES[name](*args, **kwargs)
    except TypeError:
        raise ConfigError(
            f"malformed rule identity {identity!r}") from None
