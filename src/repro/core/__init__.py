"""DeepXplore core: joint-optimization test generation (paper §3-§4)."""

from repro.core.batch import BatchDeepXplore
from repro.core.campaign import Campaign, CampaignShard, shard_corpus
from repro.core.config import Hyperparams, PAPER_HYPERPARAMS
from repro.core.constraints import (Constraint, DrebinConstraint,
                                    LightingConstraint, MultiRectOcclusion,
                                    PdfFeatureConstraint, SingleRectOcclusion,
                                    Unconstrained, constraint_for_dataset)
from repro.core.generator import DeepXplore, GeneratedTest, GenerationResult
from repro.core.objectives import (CoverageObjective, DifferentialObjective,
                                   JointObjective,
                                   RegressionDifferentialObjective)
from repro.core.oracle import (ClassificationOracle, RegressionOracle,
                               majority_label, make_oracle)

__all__ = [
    "BatchDeepXplore",
    "Campaign", "CampaignShard", "shard_corpus",
    "Hyperparams", "PAPER_HYPERPARAMS",
    "Constraint", "DrebinConstraint", "LightingConstraint",
    "MultiRectOcclusion", "PdfFeatureConstraint", "SingleRectOcclusion",
    "Unconstrained", "constraint_for_dataset",
    "DeepXplore", "GeneratedTest", "GenerationResult",
    "CoverageObjective", "DifferentialObjective", "JointObjective",
    "RegressionDifferentialObjective",
    "ClassificationOracle", "RegressionOracle", "majority_label",
    "make_oracle",
]
