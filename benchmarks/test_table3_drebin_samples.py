"""Benchmark: Table 3 — manifest features added for Drebin evasions."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_drebin_samples


def test_table3_drebin_samples(benchmark):
    result = run_once(benchmark, run_drebin_samples, scale=SCALE, seed=SEED)
    for row in result.rows:
        assert row[2] == "0" and row[3] == "1"
