"""Client for a running farm daemon, addressed by farm root.

The submit/status half of the control protocol (see
:mod:`repro.farm.server`).  Typed rejections come back as the same
exceptions the daemon raised locally — saturation as
:class:`~repro.farm.queue.QueueSaturatedError` with its ``retry_after``
hint intact, a locked store as
:class:`~repro.farm.locks.StoreLockedError`-shaped
:class:`~repro.errors.FarmError`, an unknown job id as
:class:`~repro.farm.queue.UnknownJobError` — so the CLI's one-line
error reporting needs no special cases for remote vs local.
"""

from __future__ import annotations

import json
import time

from repro.errors import FarmError
from repro.farm import server as farm_server
from repro.farm.queue import QueueSaturatedError, UnknownJobError

__all__ = ["FarmClient"]


class FarmClient:
    """Thin per-request client (one connection per call, like the wire
    protocol itself)."""

    def __init__(self, root, timeout=10.0):
        self.root = root
        self.timeout = timeout

    def _request(self, payload):
        with farm_server.connect(self.root, timeout=self.timeout) as sock:
            sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            with sock.makefile("rb") as handle:
                line = handle.readline()
        if not line:
            raise FarmError(
                f"farm daemon at {self.root} closed the connection "
                "without answering")
        response = json.loads(line.decode("utf-8"))
        if response.get("ok"):
            return response
        kind = response.get("kind")
        message = response.get("error", "farm request failed")
        # Re-raise the daemon's typed rejection with its original
        # message (the wire carries the text, not the constructor args).
        if kind == "saturated":
            error = QueueSaturatedError.__new__(QueueSaturatedError)
            error.retry_after = float(response.get("retry_after", 1.0))
            error.capacity = 0
            FarmError.__init__(error, message)
            raise error
        if kind == "unknown-job":
            error = UnknownJobError.__new__(UnknownJobError)
            FarmError.__init__(error, message)
            raise error
        raise FarmError(message)

    def ping(self):
        return self._request({"cmd": "ping"})

    def submit(self, spec):
        """Submit a job spec; returns the created job record (dict)."""
        return self._request({"cmd": "submit", "spec": spec})["job"]

    def status(self, job_id=None):
        if job_id is not None:
            return self._request({"cmd": "status", "job_id": job_id})["job"]
        return self._request({"cmd": "status"})["jobs"]

    def counts(self):
        return self._request({"cmd": "counts"})["counts"]

    def drain(self):
        return self._request({"cmd": "drain"})

    def wait(self, job_id, timeout=120.0, poll=0.2):
        """Block until a job finishes; returns its final record.

        Raises :class:`FarmError` if the job ends ``failed`` or the
        timeout expires — a stuck farm should fail loudly in scripts.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["status"] == "done":
                return job
            if job["status"] == "failed":
                raise FarmError(
                    f"job {job_id} failed: {job.get('error')}")
            if time.monotonic() >= deadline:
                raise FarmError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{job_id} (status: {job['status']})")
            time.sleep(poll)
