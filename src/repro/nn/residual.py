"""Residual block for the mini-ResNet in the model zoo."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import Relu
from repro.nn.layer import Layer

__all__ = ["Residual"]


class Residual(Layer):
    """``y = relu(body(x) + shortcut(x))``.

    ``body`` is a list of layers; ``shortcut`` is an optional list used as a
    projection when the body changes shape (1x1 conv in ResNet), otherwise
    the identity.  For coverage purposes the block exposes one neuron per
    output channel (spatial mean after the post-add ReLU); internal layers
    are treated as plumbing, which keeps the neuron table flat while still
    counting every feature map the block produces.
    """

    exposes_neurons = True

    def __init__(self, body, shortcut=None, name=None):
        super().__init__(name=name)
        self.body = list(body)
        self.shortcut = list(shortcut) if shortcut else []
        self.activation = Relu()

    def forward(self, x, training=False, workspace=None):
        out = x
        body_ctxs = []
        for layer in self.body:
            out, ctx = layer.forward(out, training=training,
                                     workspace=workspace)
            body_ctxs.append(ctx)
        skip = x
        shortcut_ctxs = []
        for layer in self.shortcut:
            skip, ctx = layer.forward(skip, training=training,
                                      workspace=workspace)
            shortcut_ctxs.append(ctx)
        if out.shape != skip.shape:
            raise ShapeError(
                f"{self.name}: body output {out.shape} does not match "
                f"shortcut output {skip.shape}; add a projection shortcut")
        z = out + skip
        if self.activation.needs_preactivation:
            a = self.activation.forward(z)
            return a, (tuple(body_ctxs), tuple(shortcut_ctxs), z, a)
        a = self.activation.forward_into(z, z)
        return a, (tuple(body_ctxs), tuple(shortcut_ctxs), None, a)

    def backward(self, ctx, grad_out, accumulate=True):
        body_ctxs, shortcut_ctxs, z, a = ctx
        grad_z = self.activation.backward(grad_out, z, a)
        grad_body = grad_z
        for layer, layer_ctx in zip(reversed(self.body),
                                    reversed(body_ctxs)):
            grad_body = layer.backward(layer_ctx, grad_body,
                                       accumulate=accumulate)
        grad_skip = grad_z
        for layer, layer_ctx in zip(reversed(self.shortcut),
                                    reversed(shortcut_ctxs)):
            grad_skip = layer.backward(layer_ctx, grad_skip,
                                       accumulate=accumulate)
        return grad_body + grad_skip

    def parameters(self):
        params = []
        for layer in self.body + self.shortcut:
            params.extend(layer.parameters())
        return params

    def buffers(self):
        buffers = {}
        for layer in self.body + self.shortcut:
            buffers.update(layer.buffers())
        return buffers

    def cast(self, dtype):
        for layer in self.body + self.shortcut:
            layer.cast(dtype)
        return self

    def output_shape(self, input_shape):
        shape = tuple(input_shape)
        for layer in self.body:
            shape = layer.output_shape(shape)
        skip_shape = tuple(input_shape)
        for layer in self.shortcut:
            skip_shape = layer.output_shape(skip_shape)
        if shape != skip_shape:
            raise ShapeError(
                f"{self.name}: body shape {shape} != shortcut {skip_shape}")
        return shape

    def neuron_count(self, input_shape):
        return self.output_shape(input_shape)[0]

    def neuron_outputs(self, output):
        return output.mean(axis=(2, 3))

    def neuron_seed(self, output_shape, neuron_index, dtype=np.float64):
        channels, h, w = output_shape
        seed = np.zeros(output_shape, dtype=dtype)
        seed[neuron_index] = 1.0 / (h * w)
        return seed
