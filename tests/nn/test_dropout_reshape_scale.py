"""Dropout, Flatten, and FixedScale layers."""

import numpy as np
import pytest

from repro.errors import ConfigError, ShapeError
from repro.nn import Dropout, FixedScale, Flatten

from tests.nn.gradcheck import check_layer_gradients


class TestDropout:
    def test_identity_at_inference(self):
        rng = np.random.default_rng(0)
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer.apply(x, training=False), x)

    def test_inverted_scaling_preserves_expectation(self):
        rng = np.random.default_rng(1)
        layer = Dropout(0.3, rng=rng)
        x = np.ones((200, 50))
        out = layer.apply(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 1.0 / 0.7)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        rng = np.random.default_rng(2)
        layer = Dropout(0.5, rng=rng)
        x = np.ones((3, 8))
        out, ctx = layer.forward(x, training=True)
        grad = layer.backward(ctx, np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)
        with pytest.raises(ConfigError):
            Dropout(-0.1)

    def test_zero_rate_is_identity_even_training(self):
        x = np.ones((2, 3))
        layer = Dropout(0.0)
        np.testing.assert_array_equal(layer.apply(x, training=True), x)


class TestFlatten:
    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 4, 5))
        layer = Flatten()
        out, ctx = layer.forward(x)
        assert out.shape == (2, 60)
        grad = layer.backward(ctx, out)
        np.testing.assert_array_equal(grad, x)

    def test_output_shape(self):
        assert Flatten().output_shape((3, 4, 5)) == (60,)

    def test_gradcheck(self):
        rng = np.random.default_rng(4)
        check_layer_gradients(Flatten(), rng.normal(size=(2, 3, 4, 4)), rng)


class TestFixedScale:
    def test_standardizes(self):
        rng = np.random.default_rng(5)
        x = rng.normal(loc=10.0, scale=3.0, size=(500, 4))
        layer = FixedScale.from_data(x)
        out = layer.apply(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passthrough(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        layer = FixedScale.from_data(x)
        out = layer.apply(x)
        # Constant feature: std 0 is replaced by 1, no division blowup.
        np.testing.assert_allclose(out[:, 0], 0.0)
        assert np.all(np.isfinite(out))

    def test_gradcheck(self):
        rng = np.random.default_rng(6)
        layer = FixedScale(rng.normal(size=5), rng.uniform(0.5, 2.0, size=5))
        check_layer_gradients(layer, rng.normal(size=(3, 5)), rng)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            FixedScale(np.zeros(3), np.ones(4))
        layer = FixedScale(np.zeros(3), np.ones(3))
        with pytest.raises(ShapeError):
            layer.apply(np.zeros((2, 4)))

    def test_buffers(self):
        layer = FixedScale(np.zeros(2), np.ones(2), name="std")
        assert set(layer.buffers()) == {"std.mean", "std.std"}
