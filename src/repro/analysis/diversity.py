"""Input-diversity measurement (paper Table 5).

Diversity of generated difference-inducing inputs is the average L1
distance between each generated input and its seed — larger distances
mean the generator explored further from the seed instead of producing
near-duplicates of one root cause.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.imageops import l1_distance

__all__ = ["average_l1_diversity", "pairwise_l1_diversity"]


def average_l1_diversity(tests, seeds):
    """Mean L1 distance from each generated test to its originating seed.

    ``tests`` is a list of :class:`~repro.core.generator.GeneratedTest`;
    ``seeds`` the array they were generated from (indexed by
    ``seed_index``).
    """
    if not tests:
        return 0.0
    seeds = np.asarray(seeds)
    distances = [l1_distance(t.x, seeds[t.seed_index]) for t in tests]
    return float(np.mean(distances))


def pairwise_l1_diversity(inputs):
    """Mean pairwise L1 distance within a set of inputs."""
    inputs = np.asarray(inputs, dtype=np.float64)
    n = inputs.shape[0]
    if n < 2:
        return 0.0
    flat = inputs.reshape(n, -1)
    total = 0.0
    count = 0
    for i in range(n):
        diffs = np.abs(flat[i + 1:] - flat[i]).sum(axis=1)
        total += float(diffs.sum())
        count += diffs.size
    return total / count
