"""Image-array helpers shared by datasets, constraints and analysis.

Images throughout the library are ``float64`` arrays in ``[0, 1]`` with
shape ``(channels, height, width)`` (single image) or ``(batch, channels,
height, width)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["clip01", "l1_distance", "to_uint8", "save_pgm", "save_ppm"]


def clip01(image):
    """Clip ``image`` into the valid ``[0, 1]`` pixel range."""
    return np.clip(image, 0.0, 1.0)


def l1_distance(a, b):
    """Sum of absolute per-pixel differences between two images.

    This is the diversity measure used by Table 5 of the paper.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ShapeError(f"image shapes differ: {a.shape} vs {b.shape}")
    return float(np.abs(a - b).sum())


def to_uint8(image):
    """Convert a ``[0, 1]`` float image to ``uint8`` pixels."""
    return (clip01(np.asarray(image)) * 255.0).round().astype(np.uint8)


def save_pgm(path, image):
    """Write a single-channel image as a binary PGM file.

    Accepts ``(H, W)`` or ``(1, H, W)`` float images in ``[0, 1]``.  PGM is
    used because it needs no imaging dependency and every viewer opens it.
    """
    arr = np.asarray(image)
    if arr.ndim == 3:
        if arr.shape[0] != 1:
            raise ShapeError(f"expected 1 channel, got {arr.shape[0]}")
        arr = arr[0]
    if arr.ndim != 2:
        raise ShapeError(f"expected 2-D image, got shape {arr.shape}")
    pixels = to_uint8(arr)
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(pixels.tobytes())


def save_ppm(path, image):
    """Write a 3-channel ``(3, H, W)`` float image as a binary PPM file."""
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[0] != 3:
        raise ShapeError(f"expected (3, H, W) image, got shape {arr.shape}")
    pixels = to_uint8(np.moveaxis(arr, 0, -1))
    header = f"P6\n{arr.shape[2]} {arr.shape[1]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(pixels.tobytes())
