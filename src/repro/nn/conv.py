"""2-D convolution via im2col.

Array layout is ``(batch, channels, height, width)`` throughout.  The
im2col/col2im pair turns convolution into a single matrix multiply, which
is the only way a pure-numpy CNN is fast enough to train the model zoo.

Kernel notes:

* ``im2col`` gathers windows through an ``as_strided`` view of the
  (padded) input and one bulk ``copyto`` — a pure data movement, so the
  result is bit-identical to the historical per-offset Python loop.
* ``col2im`` keeps the per-offset scatter-add loop **in the same i,j
  order** as always: overlapping windows sum in a fixed sequence, and
  changing that order would change float rounding and break the pinned
  float64 goldens.
* Both accept caller-provided output buffers so the ascent loop can
  reuse a :class:`~repro.nn.workspace.Workspace` across iterations, and
  ``Conv2D.forward`` fuses bias + activation into the GEMM epilogue
  (in-place on the output buffer) whenever the activation's backward
  does not need the pre-activation.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ShapeError
from repro.nn.activations import get_activation
from repro.nn.initializers import get_initializer
from repro.nn.layer import Layer
from repro.nn.parameter import Parameter
from repro.utils.rng import as_rng

__all__ = ["Conv2D", "im2col", "col2im", "conv_output_size"]


def conv_output_size(size, kernel, stride, pad):
    """Output spatial size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"kernel {kernel} with stride {stride}, pad {pad} does not fit "
            f"input size {size}")
    return out


def im2col(x, kernel_h, kernel_w, stride, pad, out=None, pad_buffer=None):
    """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, out_h*out_w).

    ``out`` (column buffer) and ``pad_buffer`` (padded-input scratch,
    shape ``(N, C, H+2p, W+2p)``) are optional preallocated arrays.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    if pad:
        if pad_buffer is None:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        else:
            # The interior is overwritten below, so only the border
            # frame needs zeroing when the buffer is recycled.
            pad_buffer[:, :, :pad, :].fill(0.0)
            pad_buffer[:, :, -pad:, :].fill(0.0)
            pad_buffer[:, :, pad:-pad, :pad].fill(0.0)
            pad_buffer[:, :, pad:-pad, -pad:].fill(0.0)
            pad_buffer[:, :, pad:-pad, pad:-pad] = x
            x = pad_buffer
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x, shape=(n, c, kernel_h, kernel_w, out_h, out_w),
        strides=(sn, sc, sh, sw, stride * sh, stride * sw))
    if out is None:
        out = np.empty((n, c * kernel_h * kernel_w, out_h * out_w),
                       dtype=x.dtype)
    np.copyto(out.reshape(n, c, kernel_h, kernel_w, out_h, out_w), windows)
    return out


def col2im(cols, input_shape, kernel_h, kernel_w, stride, pad, out=None):
    """Fold columns back to input space, summing overlapping windows.

    ``out`` is an optional unpadded buffer ``(N, C, H, W)``; it is
    zeroed here.  Each kernel offset's scatter-add is clipped to the
    valid (unpadded) region, so no padded scratch is materialized and
    no work is spent on border cells that would be cropped anyway.  The
    i,j accumulation order is load-bearing for bit-identical gradients
    — do not reorder.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    cols = cols.reshape(n, c, kernel_h, kernel_w, out_h, out_w)
    if out is None:
        grad = np.zeros((n, c, h, w), dtype=cols.dtype)
    else:
        grad = out
        grad.fill(0.0)
    for i in range(kernel_h):
        for j in range(kernel_w):
            _scatter_add(grad, cols[:, :, i, j], i - pad, j - pad, stride,
                         h, w, out_h, out_w)
    return grad


def _scatter_add(grad, col, row_off, col_off, stride, h, w, out_h, out_w):
    """Add one kernel offset's columns into the valid region of ``grad``."""
    t0 = -(row_off // stride) if row_off < 0 else 0
    u0 = -(col_off // stride) if col_off < 0 else 0
    t1 = min(out_h, (h - 1 - row_off) // stride + 1)
    u1 = min(out_w, (w - 1 - col_off) // stride + 1)
    if t0 >= t1 or u0 >= u1:
        return
    r0 = row_off + stride * t0
    c0 = col_off + stride * u0
    grad[:, :, r0:row_off + stride * (t1 - 1) + 1:stride,
         c0:col_off + stride * (u1 - 1) + 1:stride] += col[:, :, t0:t1, u0:u1]


class Conv2D(Layer):
    """Convolution with built-in activation.

    For neuron coverage, each output *channel* is one neuron whose value is
    the spatial mean of its feature map — the convention of the original
    DeepXplore implementation.
    """

    exposes_neurons = True

    def __init__(self, in_channels, out_channels, kernel_size, stride=1,
                 padding=0, activation="relu", initializer="he_normal",
                 rng=None, name=None):
        super().__init__(name=name)
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = tuple(int(k) for k in kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.activation = get_activation(activation)
        kh, kw = self.kernel_size
        fan_in = self.in_channels * kh * kw
        fan_out = self.out_channels * kh * kw
        rng = as_rng(rng)
        init = get_initializer(initializer)
        weight = init((self.out_channels, fan_in), fan_in=fan_in,
                      fan_out=fan_out, rng=rng)
        self.weight = Parameter(weight, f"{self.name}.weight")
        self.bias = Parameter(np.zeros(self.out_channels), f"{self.name}.bias")

    def forward(self, x, training=False, workspace=None):
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_channels}, H, W), "
                f"got {x.shape}")
        kh, kw = self.kernel_size
        n = x.shape[0]
        out_h = conv_output_size(x.shape[2], kh, self.stride, self.padding)
        out_w = conv_output_size(x.shape[3], kw, self.stride, self.padding)
        cols = pad_buffer = None
        if workspace is not None:
            if self.padding:
                pad_buffer = workspace.get(
                    (id(self), "pad"),
                    (n, self.in_channels, x.shape[2] + 2 * self.padding,
                     x.shape[3] + 2 * self.padding), x.dtype)
            cols = workspace.get(
                (id(self), "cols"),
                (n, self.in_channels * kh * kw, out_h * out_w), x.dtype)
        cols = im2col(x, kh, kw, self.stride, self.padding, out=cols,
                      pad_buffer=pad_buffer)
        if workspace is None:
            z_flat = self.weight.value @ cols  # (N, F, out_h*out_w)
        else:
            z_flat = workspace.get((id(self), "z"),
                                   (n, self.out_channels, out_h * out_w),
                                   x.dtype)
            np.matmul(self.weight.value, cols, out=z_flat)
        z_flat += self.bias.value[None, :, None]
        z = z_flat.reshape(n, self.out_channels, out_h, out_w)
        if self.activation.needs_preactivation:
            a = self.activation.forward(z)
            return a, (x.shape, cols, z, a, workspace)
        a = self.activation.forward_into(z, z)
        return a, (x.shape, cols, None, a, workspace)

    def backward(self, ctx, grad_out, accumulate=True):
        input_shape, cols, z, a, workspace = ctx
        if workspace is None:
            grad_z = self.activation.backward(grad_out, z, a)
        else:
            grad_z = self.activation.backward_into(
                grad_out, z, a,
                out=workspace.get((id(self), "gz"), grad_out.shape,
                                  grad_out.dtype),
                mask=workspace.get((id(self), "gzmask"), grad_out.shape,
                                   np.bool_))
        n = grad_z.shape[0]
        gz_flat = grad_z.reshape(n, self.out_channels, -1)
        if accumulate:
            self.weight.grad += np.tensordot(gz_flat, cols,
                                             axes=([0, 2], [0, 2]))
            self.bias.grad += gz_flat.sum(axis=(0, 2))
        kh, kw = self.kernel_size
        if workspace is None:
            grad_cols = self.weight.value.T @ gz_flat
            return col2im(grad_cols, input_shape, kh, kw, self.stride,
                          self.padding)
        grad_cols = workspace.get((id(self), "gcols"), cols.shape,
                                  gz_flat.dtype)
        np.matmul(self.weight.value.T, gz_flat, out=grad_cols)
        _, c, h, w = input_shape
        grad_x = workspace.get((id(self), "gx"), (n, c, h, w),
                               gz_flat.dtype)
        return col2im(grad_cols, input_shape, kh, kw, self.stride,
                      self.padding, out=grad_x)

    def parameters(self):
        return [self.weight, self.bias]

    def output_shape(self, input_shape):
        c, h, w = input_shape
        kh, kw = self.kernel_size
        return (self.out_channels,
                conv_output_size(h, kh, self.stride, self.padding),
                conv_output_size(w, kw, self.stride, self.padding))

    def neuron_count(self, input_shape):
        return self.out_channels

    def neuron_outputs(self, output):
        return output.mean(axis=(2, 3))

    def neuron_seed(self, output_shape, neuron_index, dtype=np.float64):
        channels, h, w = output_shape
        seed = np.zeros(output_shape, dtype=dtype)
        seed[neuron_index] = 1.0 / (h * w)
        return seed
