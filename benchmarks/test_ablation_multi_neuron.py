"""Ablation: one neuron per iteration (Algorithm 1) vs joint multi-neuron.

The paper chose k=1 "for clarity"; this ablation measures what k buys:
coverage per generated test vs differences found, on the MNIST trio.
"""

import numpy as np
import pytest

from benchmarks.conftest import SCALE, SEED
from repro.core import DeepXplore, PAPER_HYPERPARAMS, LightingConstraint
from repro.datasets import load_dataset
from repro.extensions import MultiNeuronCoverageObjective
from repro.models import get_trio
from repro.utils.tables import render_table


@pytest.mark.parametrize("k", [1, 3, 5])
def test_ablation_multi_neuron(benchmark, k):
    dataset = load_dataset("mnist", scale=SCALE, seed=SEED)
    models = get_trio("mnist", scale=SCALE, seed=SEED, dataset=dataset)
    seeds, _ = dataset.sample_seeds(20, np.random.default_rng(21))
    hp = PAPER_HYPERPARAMS["mnist"].with_(lambda2=1.0)

    def run():
        factory = (None if k == 1 else
                   lambda trackers, rng: MultiNeuronCoverageObjective(
                       trackers, neurons_per_model=k, rng=rng))
        engine = DeepXplore(models, hp, LightingConstraint(), rng=23,
                            coverage_factory=factory)
        result = engine.run(seeds)
        return result, engine.mean_coverage()

    result, coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["neurons/iter", "# diffs", "mean NCov"],
        [[k, result.difference_count, f"{coverage:.1%}"]],
        title="[ablation] multi-neuron coverage objective"))
    assert result.seeds_processed == 20
