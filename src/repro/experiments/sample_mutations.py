"""Tables 3 & 4: sample feature mutations behind malware evasions.

Table 3 (Drebin): manifest features DeepXplore *added* to make malware
classify as benign.  Table 4 (PDF): the top-3 most in(de)cremented
features for evasive PDFs.  Both render before/after values for generated
difference-inducing inputs whose seed was malicious and which at least one
model now calls benign.
"""

from __future__ import annotations

import numpy as np

from repro.core import PAPER_HYPERPARAMS, constraint_for_dataset
from repro.datasets import load_dataset
from repro.experiments.common import (ExperimentResult, make_engine,
                                      seeds_for_scale)
from repro.models import get_trio
from repro.utils.rng import as_rng

__all__ = ["run_drebin_samples", "run_pdf_samples", "find_evasions"]

_MALICIOUS = 1
_BENIGN = 0


def find_evasions(dataset_name, scale, seed, max_samples=2, use_cache=True):
    """Generate evasive malware inputs for a feature dataset.

    Returns a list of ``(seed_x, mutated_x)`` pairs where the seed was
    agreed malicious and at least one model flips to benign on the mutated
    input.
    """
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    models = get_trio(dataset_name, scale=scale, seed=seed, dataset=dataset,
                      use_cache=use_cache)
    rng = as_rng(seed + 17)
    n_seeds = seeds_for_scale(scale, maximum=dataset.x_test.shape[0])
    seeds, labels = dataset.sample_seeds(n_seeds, rng)
    malicious = seeds[np.asarray(labels) == _MALICIOUS]
    engine = make_engine("sequential", models,
                         PAPER_HYPERPARAMS[dataset_name],
                         constraint_for_dataset(dataset), "classification",
                         rng)
    evasions = []
    for i in range(malicious.shape[0]):
        if len(evasions) >= max_samples:
            break
        test = engine.generate_from_seed(malicious[i], seed_index=i)
        if test is None or test.iterations == 0:
            continue
        if _BENIGN in test.predictions:
            evasions.append((malicious[i], test.x))
    return dataset, evasions


def _mutation_rows(dataset, evasions, top_k=3):
    from repro.analysis import mutation_report
    rows = []
    for sample_no, (before, after) in enumerate(evasions, start=1):
        for mut in mutation_report(before, after, dataset.feature_names,
                                   top_k=top_k):
            rows.append([f"input {sample_no}", mut.name,
                         f"{mut.before:g}", f"{mut.after:g}"])
    return rows


def run_drebin_samples(scale="small", seed=0, use_cache=True):
    """Table 3: manifest features added to evade the Drebin detectors."""
    dataset, evasions = find_evasions("drebin", scale, seed,
                                      use_cache=use_cache)
    result = ExperimentResult(
        experiment_id="table3",
        title="Features added to the manifest for Drebin evasions",
        headers=["sample", "feature", "before", "after"],
        rows=_mutation_rows(dataset, evasions),
        paper_reference=("two sample malware inputs with 3 manifest "
                         "features flipped 0 -> 1 each"),
    )
    if not evasions:
        result.notes.append("no evasions found at this scale/seed")
    result.notes.append("constraint: manifest features only, add-only")
    return result


def run_pdf_samples(scale="small", seed=0, use_cache=True):
    """Table 4: top-3 most in(de)cremented features for PDF evasions."""
    dataset, evasions = find_evasions("pdf", scale, seed,
                                      use_cache=use_cache)
    result = ExperimentResult(
        experiment_id="table4",
        title="Top in(de)cremented features for PDF evasions",
        headers=["sample", "feature", "before", "after"],
        rows=_mutation_rows(dataset, evasions),
        paper_reference=("e.g. size 1 -> 34, count_action 0 -> 21, "
                         "count_endobj 1 -> 20"),
    )
    if not evasions:
        result.notes.append("no evasions found at this scale/seed")
    result.notes.append(
        "constraint: count/length features only, integer updates")
    return result
