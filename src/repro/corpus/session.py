"""Resumable coverage-guided fuzzing sessions.

A :class:`FuzzSession` runs the existing :class:`~repro.core.Campaign`
engine in *waves* over a persistent :class:`~repro.corpus.CorpusStore`:

    schedule wave → run campaign → absorb tests + coverage → checkpoint

Every wave commits atomically (tests are content-addressed and
idempotent; coverage snapshots flip with the checkpoint), so a session
killed at any instant — including mid-wave — resumes bit-identically:
the interrupted wave simply re-runs from the last commit, regenerates
the same tests (same trackers, same spawned RNG stream), and the
idempotent absorb converges to exactly the uninterrupted store.

Determinism identity (``ConfigError`` to change on resume): the root
``seed``, ``wave_size``, ``shard_size``, the constraint kind, the
ascent rule (``rule.identity()``, e.g. ``momentum(beta=0.9)``), the
engine's exhausted-tape accounting (``absorb_exhausted``), and the
store's config fingerprint (model names, coverage threshold, task).
``workers`` is throughput only, exactly as for campaigns: a wave is a
campaign, and campaigns are worker-count invariant.  Corpora written
before rules existed resume as ``vanilla``.

Round *i* always draws the *i*-th spawned child of the root seed
(:func:`repro.utils.rng.spawn_seed_sequences` children depend on
position only), so "run 4 rounds" and "run 2 rounds, get killed, resume
to 4" execute identical randomness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.campaign import Campaign, DEFAULT_SHARD_SIZE
from repro.core.config import Hyperparams
from repro.core.constraints import Unconstrained
from repro.core.engine import AscentRule, VanillaRule
from repro.corpus.scheduler import SeedScheduler
from repro.corpus.store import CorpusStore, corpus_fingerprint
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.extensions.seed_selection import select_seeds
from repro.utils.rng import spawn_seed_sequences

__all__ = ["FuzzSession", "FuzzReport"]

FUZZ_STATE_VERSION = 1


@dataclass
class FuzzReport:
    """What one :meth:`FuzzSession.run` call did."""

    completed_rounds: int = 0            # total rounds the corpus has seen
    waves: list = field(default_factory=list)   # per-wave stat dicts
    elapsed: float = 0.0

    @property
    def waves_run(self):
        return len(self.waves)

    @property
    def new_tests(self):
        return sum(w["new_tests"] for w in self.waves)

    @property
    def seeds_fuzzed(self):
        return sum(w["wave_size"] for w in self.waves)

    def render(self):
        lines = [f"{'round':>5} {'wave':>5} {'yield':>5} {'new':>5} "
                 f"{'novel%':>7} {'pending':>7}"]
        for w in self.waves:
            lines.append(
                f"{w['round']:>5} {w['wave_size']:>5} {w['yielded']:>5} "
                f"{w['new_tests']:>5} {100 * w['novelty']:>6.2f}% "
                f"{w['pending']:>7}")
        lines.append(f"{self.waves_run} wave(s), {self.new_tests} new "
                     f"test(s) in {self.elapsed:.1f}s")
        return "\n".join(lines)


class FuzzSession:
    """Resumable, coverage-guided fuzzing loop over a corpus store.

    Parameters
    ----------
    store:
        A :class:`CorpusStore` or a directory path (created if absent).
    models, hyperparams, constraint, task:
        As for :class:`~repro.core.Campaign`.
    wave_size, shard_size, seed, rule, absorb_exhausted:
        The session's deterministic identity (with the constraint kind);
        persisted in the store and validated on resume.  ``rule`` is the
        :class:`~repro.core.engine.AscentRule` every wave's campaign
        ascends under (default vanilla); ``absorb_exhausted=False`` is
        the engine's paper-exact coverage accounting — identity too,
        because it changes what later waves' coverage objectives chase.
    workers, mp_start_method:
        Campaign fan-out; changing them never changes results.
    dataset, seed_strategy, initial_seed_count, initial_seeds:
        Where the first seed pool comes from when the store is empty:
        either an explicit ``initial_seeds`` array, or
        ``initial_seed_count`` seeds drawn from ``dataset`` by
        ``seed_strategy`` (:func:`repro.extensions.seed_selection.
        select_seeds`) under a root-derived RNG.  On resume these are
        ignored — unless the previous session died mid-draw, in which
        case the same source is needed to finish the (deterministic,
        idempotent) draw.
    """

    def __init__(self, store, models, hyperparams=None, constraint=None,
                 task="classification", wave_size=16, workers=1,
                 shard_size=DEFAULT_SHARD_SIZE, seed=0, rule=None,
                 absorb_exhausted=True, dataset=None,
                 seed_strategy="random", initial_seed_count=64,
                 initial_seeds=None, mp_start_method=None):
        self.store = store if isinstance(store, CorpusStore) \
            else CorpusStore(store)
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        self.task = task
        if wave_size < 1:
            raise ConfigError(f"wave_size must be >= 1, got {wave_size}")
        self.wave_size = int(wave_size)
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self.seed = int(seed)
        self.rule = rule if rule is not None else VanillaRule()
        if not isinstance(self.rule, AscentRule):
            raise ConfigError("rule must be an AscentRule instance")
        self.absorb_exhausted = bool(absorb_exhausted)
        self.mp_start_method = mp_start_method

        self.store.bind_config(
            corpus_fingerprint(self.models, self.hp, self.task))
        self.trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                         for m in self.models]
        persisted = self.store.coverage_states()
        for model, tracker in zip(self.models, self.trackers):
            if model.name in persisted:
                tracker.load_state_dict(persisted[model.name])

        state = self.store.fuzz_state()
        pool_incomplete = (state is not None
                           and not state.get("pool_complete", True))
        if state is not None:
            self._check_identity(state)
            self.completed_rounds = int(state["completed_rounds"])
            self.scheduler = SeedScheduler.from_state(state["scheduler"])
            if pool_incomplete:
                self._resume_pool_draw(state, dataset, seed_strategy,
                                       initial_seed_count, initial_seeds)
        else:
            self.completed_rounds = 0
            self.scheduler = SeedScheduler()
            if (not self.store.entries(kind="seed")
                    and (dataset is not None or initial_seeds is not None)):
                # Mark the draw BEFORE the first seed hits the disk: a
                # kill mid-draw must resume as "finish the draw", not be
                # mistaken for a complete (smaller) pool.
                self._commit(0, pool_complete=False,
                             pool_strategy=seed_strategy,
                             pool_count=int(initial_seed_count))
                self._draw_initial_pool(dataset, seed_strategy,
                                        initial_seed_count, initial_seeds)
        # Register store entries the scheduler has not seen (initial
        # seeds just added, a merged-in store, or a partially persisted
        # wave): seeds are fuzzable, tests are archived regression value.
        for entry in self.store.entries():
            self.scheduler.add(entry["hash"],
                               schedulable=(entry["kind"] == "seed"))
        if len(self.scheduler) == 0:
            raise ConfigError(
                "corpus is empty and no dataset/initial_seeds were given "
                "to draw a first seed pool from")
        if state is None or pool_incomplete:
            self._commit(self.completed_rounds)

    # -- identity -----------------------------------------------------------
    def _identity(self):
        return {
            "version": FUZZ_STATE_VERSION,
            "root_seed": self.seed,
            "wave_size": self.wave_size,
            "shard_size": self.shard_size,
            "constraint": type(self.constraint).__name__,
            "ascent": self.rule.identity(),
            "absorb_exhausted": self.absorb_exhausted,
            "dtype": str(np.dtype(self.models[0].dtype)),
        }

    def _check_identity(self, state):
        identity = self._identity()
        # Corpora written before ascent rules / exhausted-tape folding /
        # the dtype policy existed carry none of these keys; they resume
        # under the historical defaults (everything ran at float64).
        legacy = {"ascent": VanillaRule().identity(),
                  "absorb_exhausted": True,
                  "dtype": "float64"}
        stored = {key: state.get(key, legacy.get(key)) for key in identity}
        if stored != identity:
            raise ConfigError(
                f"cannot resume fuzz session: corpus was built with "
                f"{stored!r}, this session asks for {identity!r} — these "
                f"parameters are the run's deterministic identity")

    # -- initial pool -------------------------------------------------------
    def _draw_initial_pool(self, dataset, seed_strategy, initial_seed_count,
                           initial_seeds):
        """Persist the first seed pool (deterministic + idempotent).

        The draw depends only on the root seed, so replaying it — after
        a kill that left a partial pool behind — re-adds the exact same
        seeds in the exact same order, with the already-present prefix
        deduping to no-ops.
        """
        if initial_seeds is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, 0x5EED]))
            initial_seeds, _ = select_seeds(seed_strategy, dataset,
                                            initial_seed_count, rng=rng,
                                            models=self.models)
        for index, x in enumerate(np.asarray(initial_seeds,
                                             dtype=np.float64)):
            self.store.add_entry(x, "seed", origin=int(index))

    def _resume_pool_draw(self, state, dataset, seed_strategy,
                          initial_seed_count, initial_seeds):
        """Finish an initial-pool draw a previous session died inside."""
        if initial_seeds is None and dataset is None:
            raise ConfigError(
                "session was interrupted while drawing its initial seed "
                "pool; re-run with the same dataset/seed source so the "
                "draw can finish")
        if (state.get("pool_strategy") is not None
                and (state["pool_strategy"] != seed_strategy
                     or int(state["pool_count"]) != int(initial_seed_count))):
            raise ConfigError(
                f"cannot finish interrupted pool draw: it used strategy "
                f"{state['pool_strategy']!r} with {state['pool_count']} "
                f"seed(s), this session asks for {seed_strategy!r} with "
                f"{initial_seed_count}")
        self._draw_initial_pool(dataset, seed_strategy, initial_seed_count,
                                initial_seeds)

    # -- the wave loop ------------------------------------------------------
    def run(self, rounds, shard_runner=None):
        """Advance the corpus to ``rounds`` total completed rounds.

        ``rounds`` is a *target*, not an increment: a fresh corpus runs
        rounds ``0..rounds-1``; a corpus already at ``rounds`` runs
        nothing; a corpus killed mid-way continues from its checkpoint.
        Stops early when the scheduler has no pending seeds.  Returns a
        :class:`FuzzReport`.

        ``shard_runner`` overrides each wave campaign's shard placement
        (see :meth:`Campaign.run`); the distribution layer passes a
        ledger-backed runner here so federated hosts split a wave's
        shards between them.  Placement only — results are identical
        with or without one.
        """
        if rounds < 0:
            raise ConfigError(f"rounds must be >= 0, got {rounds}")
        report = FuzzReport(completed_rounds=self.completed_rounds)
        start = time.perf_counter()
        if rounds <= self.completed_rounds:
            report.elapsed = time.perf_counter() - start
            return report
        children = spawn_seed_sequences(self.seed, rounds)
        tracked_total = sum(t.tracked_count for t in self.trackers)
        # One persistent worker pool for every wave of this call: worker
        # processes deserialize each model payload exactly once per run,
        # not once per wave (throughput only — a pooled wave is
        # bit-identical to a per-wave pool).
        pool = None
        try:
            for round_index in range(self.completed_rounds, rounds):
                wave = self.scheduler.next_wave(self.wave_size)
                if not wave:
                    break
                covered_before = sum(t.covered_count()
                                     for t in self.trackers)
                campaign = Campaign(
                    self.models, self.hp, self.constraint, task=self.task,
                    trackers=self.trackers, workers=self.workers,
                    shard_size=self.shard_size, seed=children[round_index],
                    rule=self.rule, absorb_exhausted=self.absorb_exhausted,
                    mp_start_method=self.mp_start_method)
                if pool is None and self.workers > 1 \
                        and shard_runner is None:
                    pool = campaign.make_pool()
                scales = None
                if self.rule.accepts_seed_scales:
                    # Close the feedback loop: each scheduled seed's step
                    # scale comes from its scheduler energy (dry seeds step
                    # farther, hot ones more carefully).  Energies are part
                    # of the committed scheduler state, so a resumed wave
                    # recomputes the same scales bit-for-bit.
                    scales = self.rule.scales_from_energy(
                        [self.scheduler.stats(h)["energy"] for h in wave])
                result = campaign.run(self.store.load_inputs(wave),
                                      seed_scales=scales, pool=pool,
                                      shard_runner=shard_runner)
                newly = sum(t.covered_count()
                            for t in self.trackers) - covered_before
                novelty = newly / tracked_total if tracked_total else 0.0
                yielded, new_tests = set(), 0
                for test in result.tests:
                    yielded.add(wave[test.seed_index])
                    entry_hash, added = self.store.add_entry(
                        test.x, "test",
                        origin=wave[test.seed_index], round=round_index,
                        iterations=int(test.iterations),
                        predictions=np.asarray(test.predictions).tolist(),
                        seed_class=test.seed_class)
                    self.scheduler.add(entry_hash, schedulable=False)
                    new_tests += int(added)
                self.scheduler.record_wave(wave, yielded, novelty)
                self.completed_rounds = round_index + 1
                self._commit(self.completed_rounds)
                report.waves.append({
                    "round": round_index,
                    "wave_size": len(wave),
                    "yielded": len(yielded),
                    "new_tests": new_tests,
                    "novelty": novelty,
                    "pending": self.scheduler.pending_count(),
                })
        finally:
            if pool is not None:
                pool.close()
        report.completed_rounds = self.completed_rounds
        report.elapsed = time.perf_counter() - start
        return report

    def _commit(self, completed_rounds, pool_complete=True, **pool_meta):
        fuzz_state = dict(self._identity())
        fuzz_state["completed_rounds"] = int(completed_rounds)
        fuzz_state["pool_complete"] = bool(pool_complete)
        fuzz_state.update(pool_meta)
        fuzz_state["scheduler"] = self.scheduler.state_dict()
        self.store.commit(
            coverage_states={m.name: t.state_dict()
                             for m, t in zip(self.models, self.trackers)},
            fuzz_state=fuzz_state)

    # -- conveniences -------------------------------------------------------
    def mean_coverage(self):
        """Mean neuron coverage across models, from the live trackers."""
        return float(np.mean([t.coverage() for t in self.trackers]))

    def distill(self):
        """Shrink the stored test set to a coverage-preserving subset.

        Delegates to :meth:`CorpusStore.distill` (greedy set-cover via
        ``analysis/minimize.py``), then drops the pruned entries from
        the scheduler and commits.  Returns ``(kept, dropped)``.
        """
        kept, dropped = self.store.distill(
            self.models, threshold=self.hp.threshold)
        remaining = {entry["hash"] for entry in self.store.entries()}
        self.scheduler = SeedScheduler.from_state({"entries": [
            record for record in self.scheduler.state_dict()["entries"]
            if record["hash"] in remaining]})
        self._commit(self.completed_rounds)
        return kept, dropped
