"""All 15 zoo architectures: build, forward, output domains."""

import numpy as np
import pytest

from repro.models import (build_dave_dropout, build_dave_norminit,
                          build_dave_orig, build_drebin_model,
                          build_lenet1, build_lenet1_variant, build_lenet4,
                          build_lenet5, build_pdf_model, build_resnet,
                          build_vgg16, build_vgg19)

_LENETS = [build_lenet1, build_lenet4, build_lenet5]
_IMAGENETS = [build_vgg16, build_vgg19, build_resnet]
_DAVES = [build_dave_orig, build_dave_norminit, build_dave_dropout]


@pytest.mark.parametrize("builder", _LENETS)
def test_lenets_forward(builder):
    net = builder(rng=np.random.default_rng(0))
    x = np.random.default_rng(1).random((2, 1, 28, 28))
    probs = net.predict(x)
    assert probs.shape == (2, 10)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)


def test_lenet_neuron_ordering():
    """LeNet-1 < LeNet-4 < LeNet-5 in neuron count, as in Table 1."""
    n1 = build_lenet1(rng=np.random.default_rng(0)).total_neurons
    n4 = build_lenet4(rng=np.random.default_rng(0)).total_neurons
    n5 = build_lenet5(rng=np.random.default_rng(0)).total_neurons
    assert n1 < n4 < n5


def test_lenet1_variant_extra_filters():
    base = build_lenet1_variant(rng=np.random.default_rng(0),
                                extra_filters=0)
    bigger = build_lenet1_variant(rng=np.random.default_rng(0),
                                  extra_filters=2)
    assert bigger.total_neurons == base.total_neurons + 4


@pytest.mark.parametrize("builder", _IMAGENETS)
def test_imagenet_models_forward(builder):
    net = builder(rng=np.random.default_rng(0))
    x = np.random.default_rng(1).random((2, 3, 32, 32))
    probs = net.predict(x)
    assert probs.shape == (2, 10)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)


def test_vgg19_deeper_than_vgg16():
    v16 = build_vgg16(rng=np.random.default_rng(0))
    v19 = build_vgg19(rng=np.random.default_rng(0))
    assert len(v19.layers) > len(v16.layers)
    assert v19.total_neurons > v16.total_neurons


@pytest.mark.parametrize("builder", _DAVES)
def test_dave_models_regress_bounded_angles(builder):
    net = builder(rng=np.random.default_rng(0))
    x = np.random.default_rng(1).random((3, 1, 16, 32))
    out = net.predict(x)
    assert out.shape == (3, 1)
    assert np.all(np.abs(out) < np.pi / 2)  # atan head bound


def test_dave_orig_has_batchnorm_dave_norminit_does_not():
    from repro.nn import BatchNorm
    orig = build_dave_orig(rng=np.random.default_rng(0))
    norminit = build_dave_norminit(rng=np.random.default_rng(0))
    assert any(isinstance(l, BatchNorm) for l in orig.layers)
    assert not any(isinstance(l, BatchNorm) for l in norminit.layers)


def test_dave_dropout_has_dropout_layers():
    from repro.nn import Dropout
    net = build_dave_dropout(rng=np.random.default_rng(0))
    assert sum(isinstance(l, Dropout) for l in net.layers) == 2


def test_pdf_model_embeds_scaler():
    rng = np.random.default_rng(2)
    features = np.abs(rng.normal(50.0, 20.0, size=(100, 135)))
    net = build_pdf_model((200, 200), features, rng=rng)
    probs = net.predict(features[:4])
    assert probs.shape == (4, 2)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)


@pytest.mark.parametrize("hidden", [(200, 200), (50, 50), (200, 10)])
def test_drebin_models(hidden):
    rng = np.random.default_rng(3)
    net = build_drebin_model(hidden, input_dim=1300, rng=rng)
    x = (rng.random((2, 1300)) < 0.1).astype(float)
    probs = net.predict(x)
    assert probs.shape == (2, 2)
    # Hidden widths respected.
    dense_widths = [l.out_features for l in net.layers]
    assert tuple(dense_widths[:-1]) == hidden
