"""CorpusStore: content addressing, atomic commits, merge laws, distill."""

import json
import os

import numpy as np
import pytest

from repro.corpus import CorpusStore, input_hash
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError, CoverageError


def test_input_hash_canonicalizes_dtype_and_layout(rng):
    x = rng.random((4, 3))
    assert input_hash(x) == input_hash(np.asfortranarray(x))
    assert input_hash(x) == input_hash(x.tolist())
    assert input_hash(x) != input_hash(x + 1e-9)
    # Shape participates: a flat view is a different input.
    assert input_hash(x) != input_hash(x.ravel())


def test_add_entry_dedups_by_content(tmp_path, rng):
    store = CorpusStore(tmp_path / "c")
    x = rng.random((2, 2))
    h1, added1 = store.add_entry(x, "seed", origin=0)
    h2, added2 = store.add_entry(x.copy(), "test", origin="whatever")
    assert (added1, added2) == (True, False)
    assert h1 == h2
    assert len(store) == 1
    assert store.get(h1)["kind"] == "seed"   # first write wins
    np.testing.assert_array_equal(store.load_input(h1), x)


def test_entries_keep_insertion_order_across_reopen(tmp_path, rng):
    store = CorpusStore(tmp_path / "c")
    hashes = [store.add_entry(rng.random((3,)), "seed", origin=i)[0]
              for i in range(5)]
    reopened = CorpusStore(tmp_path / "c")
    assert [e["hash"] for e in reopened.entries()] == hashes
    assert [e["origin"] for e in reopened.entries()] == list(range(5))


def test_truncated_meta_line_is_ignored(tmp_path, rng):
    store = CorpusStore(tmp_path / "c")
    keep, _ = store.add_entry(rng.random((3,)), "seed")
    with open(store.meta_path, "a", encoding="utf-8") as handle:
        handle.write('{"hash": "deadbeef", "kin')   # crash mid-append
    reopened = CorpusStore(tmp_path / "c")
    assert [e["hash"] for e in reopened.entries()] == [keep]


def test_commit_roundtrips_coverage(tmp_path, lenet1, rng):
    tracker = NeuronCoverageTracker(lenet1, threshold=0.2)
    tracker.update(rng.random((4, 1, 28, 28)))
    store = CorpusStore(tmp_path / "c")
    store.commit(coverage_states={lenet1.name: tracker.state_dict()},
                 fuzz_state={"completed_rounds": 1})
    reopened = CorpusStore(tmp_path / "c")
    state = reopened.coverage_states()[lenet1.name]
    np.testing.assert_array_equal(state["covered"], tracker.covered)
    assert state["threshold"] == 0.2
    assert reopened.fuzz_state() == {"completed_rounds": 1}
    # The snapshot loads back into a live tracker.
    twin = NeuronCoverageTracker(lenet1, threshold=0.2)
    twin.load_state_dict(state)
    np.testing.assert_array_equal(twin.covered, tracker.covered)


def test_commit_garbage_collects_old_generations(tmp_path, lenet1, rng):
    tracker = NeuronCoverageTracker(lenet1, threshold=0.2)
    store = CorpusStore(tmp_path / "c")
    for _ in range(3):
        tracker.update(rng.random((2, 1, 28, 28)))
        store.commit(coverage_states={lenet1.name: tracker.state_dict()},
                     fuzz_state=None)
    snapshots = [n for n in os.listdir(store.coverage_dir)
                 if n.endswith(".npz")]
    assert len(snapshots) == 1
    assert ".g3." in snapshots[0]


def test_merge_coverage_follows_or_law(tmp_path, lenet1, rng):
    a = NeuronCoverageTracker(lenet1, threshold=0.2)
    b = NeuronCoverageTracker(lenet1, threshold=0.2)
    xa, xb = rng.random((3, 1, 28, 28)), rng.random((3, 1, 28, 28))
    a.update(xa)
    b.update(xb)
    store = CorpusStore(tmp_path / "c")
    store.commit(coverage_states={lenet1.name: a.state_dict()},
                 fuzz_state=None)
    merged = store.merge_coverage({lenet1.name: b.state_dict()})
    both = NeuronCoverageTracker(lenet1, threshold=0.2)
    both.update(np.concatenate([xa, xb]))
    np.testing.assert_array_equal(merged[lenet1.name]["covered"],
                                  both.covered)


def test_merge_coverage_rejects_incompatible(tmp_path, lenet1, rng):
    a = NeuronCoverageTracker(lenet1, threshold=0.2)
    store = CorpusStore(tmp_path / "c")
    store.commit(coverage_states={lenet1.name: a.state_dict()},
                 fuzz_state=None)
    other = NeuronCoverageTracker(lenet1, threshold=0.7)  # other criterion
    with pytest.raises(CoverageError):
        store.merge_coverage({lenet1.name: other.state_dict()})


def test_bind_config_pins_and_validates(tmp_path):
    store = CorpusStore(tmp_path / "c")
    store.bind_config({"models": ["a", "b"], "threshold": 0.0})
    reopened = CorpusStore(tmp_path / "c")
    reopened.bind_config({"models": ["a", "b"], "threshold": 0.0})
    with pytest.raises(ConfigError):
        reopened.bind_config({"models": ["a", "z"], "threshold": 0.0})


def test_open_missing_store_without_create_raises(tmp_path):
    """Read-only callers must not fabricate a store at a typo'd path."""
    with pytest.raises(ConfigError):
        CorpusStore(tmp_path / "nope", create=False)
    assert not (tmp_path / "nope").exists()
    dest = CorpusStore(tmp_path / "dest")
    with pytest.raises(ConfigError):
        dest.merge(str(tmp_path / "nope"))


def test_version_mismatch_is_config_error(tmp_path):
    store = CorpusStore(tmp_path / "c")
    store.commit(fuzz_state=None)
    with open(store.manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest["version"] = 99
    with open(store.manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    # A future-format store may also have records this build cannot
    # parse; the version check must fire before the parsers do.
    with open(store.meta_path, "a", encoding="utf-8") as handle:
        handle.write('{"content_id": "a-version-99-record"}\n')
    with pytest.raises(ConfigError):
        CorpusStore(tmp_path / "c")


def test_store_merge_dedups_and_ors_coverage(tmp_path, lenet1, rng):
    src_a = CorpusStore(tmp_path / "a")
    src_b = CorpusStore(tmp_path / "b")
    shared = rng.random((3,))
    ha, _ = src_a.add_entry(shared, "seed", origin=0)
    src_a.add_entry(rng.random((3,)), "test", origin=ha)
    src_b.add_entry(shared, "seed", origin=0)
    src_b.add_entry(rng.random((3,)), "test", origin=ha)
    ta = NeuronCoverageTracker(lenet1, threshold=0.2)
    tb = NeuronCoverageTracker(lenet1, threshold=0.2)
    xa, xb = rng.random((2, 1, 28, 28)), rng.random((2, 1, 28, 28))
    ta.update(xa)
    tb.update(xb)
    src_a.commit(coverage_states={lenet1.name: ta.state_dict()},
                 fuzz_state=None)
    src_b.commit(coverage_states={lenet1.name: tb.state_dict()},
                 fuzz_state=None)

    dest = CorpusStore(tmp_path / "dest")
    added = dest.merge(src_a) + dest.merge(str(tmp_path / "b"))
    assert added == 3            # the shared seed dedups
    assert len(dest) == 3
    both = NeuronCoverageTracker(lenet1, threshold=0.2)
    both.update(np.concatenate([xa, xb]))
    np.testing.assert_array_equal(
        dest.coverage_states()[lenet1.name]["covered"], both.covered)
    # Idempotent: re-merging a source changes nothing.
    assert dest.merge(src_a) == 0
    assert len(dest) == 3


def test_merge_incompatible_coverage_fails_before_entries(tmp_path, lenet1,
                                                          rng):
    """Regression: an incompatible source used to pollute the
    destination's entry list before the coverage merge raised."""
    src = CorpusStore(tmp_path / "src")
    src.add_entry(rng.random((3,)), "seed", origin=0)
    hot = NeuronCoverageTracker(lenet1, threshold=0.7)
    src.commit(coverage_states={lenet1.name: hot.state_dict()},
               fuzz_state=None)
    dest = CorpusStore(tmp_path / "dest")
    cold = NeuronCoverageTracker(lenet1, threshold=0.2)
    dest.commit(coverage_states={lenet1.name: cold.state_dict()},
                fuzz_state=None)
    with pytest.raises(CoverageError):
        dest.merge(src)
    assert len(dest) == 0
    assert dest.coverage_states()[lenet1.name]["threshold"] == 0.2


def test_merge_skips_disk_reads_for_known_entries(tmp_path, rng):
    shared = rng.random((3,))
    src = CorpusStore(tmp_path / "src")
    src.add_entry(shared, "seed", origin=0)
    dest = CorpusStore(tmp_path / "dest")
    dest.add_entry(shared, "seed", origin=0)

    def no_read(entry_hash):
        raise AssertionError("known entries must not be re-read")

    src.load_input = no_read
    assert dest.merge(src) == 0
    assert len(dest) == 1


def test_distill_keeps_coverage_preserving_tests(tmp_path, lenet1, rng):
    store = CorpusStore(tmp_path / "c")
    inputs = rng.random((6, 1, 28, 28))
    for i, x in enumerate(inputs):
        store.add_entry(x, "test", origin=int(i))
    seed_hash, _ = store.add_entry(rng.random((1, 28, 28)), "seed", origin=0)
    before = NeuronCoverageTracker(lenet1, threshold=0.2)
    before.update(inputs)
    kept, dropped = store.distill([lenet1], threshold=0.2)
    assert kept + dropped == 6
    assert seed_hash in store                 # seeds survive distillation
    remaining = store.entries(kind="test")
    after = NeuronCoverageTracker(lenet1, threshold=0.2)
    after.update(store.load_inputs([e["hash"] for e in remaining]))
    np.testing.assert_array_equal(after.covered, before.covered)
    # Dropped inputs are gone from disk; kept ones reload.
    on_disk = {n[:-4] for n in os.listdir(store.inputs_dir)}
    assert on_disk == {e["hash"] for e in store.entries()}
    reopened = CorpusStore(tmp_path / "c")
    assert len(reopened) == len(store)
