"""The 15-model zoo of the paper's Table 1, scaled to numpy-on-CPU."""

from repro.models.dave import (build_dave_dropout, build_dave_norminit,
                               build_dave_orig)
from repro.models.lenet import (build_lenet1, build_lenet1_variant,
                                build_lenet4, build_lenet5)
from repro.models.malware import build_drebin_model, build_mlp, build_pdf_model
from repro.models.registry import (MODEL_ZOO, TRIOS, ModelSpec, get_model,
                                   get_model_payload, get_trio,
                                   get_trio_payloads, model_accuracy,
                                   train_model, zoo_names)
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg16, build_vgg19

__all__ = [
    "build_dave_dropout", "build_dave_norminit", "build_dave_orig",
    "build_lenet1", "build_lenet1_variant", "build_lenet4", "build_lenet5",
    "build_drebin_model", "build_mlp", "build_pdf_model",
    "MODEL_ZOO", "TRIOS", "ModelSpec", "get_model", "get_model_payload",
    "get_trio", "get_trio_payloads", "model_accuracy", "train_model",
    "zoo_names",
    "build_resnet", "build_vgg16", "build_vgg19",
]
