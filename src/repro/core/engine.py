"""The one ascent engine: Algorithm 1, vectorized, strategy-composed.

This module owns the repo's single gradient-ascent loop.  Historically
the joint-optimization loop existed three times — sequential
(``DeepXplore``), vectorized (``BatchDeepXplore``) and heavy-ball
(``MomentumDeepXplore``) — so every improvement had to be written three
times and momentum could not be combined with batching, campaigns, or
corpus fuzzing at all.  The split is now:

* :func:`run_ascent` — the loop body itself (lines 8-19 of the paper's
  Algorithm 1), a small vectorized driver with no knowledge of models
  or oracles.  The FGSM baseline iterates through it too; nothing else
  in ``src/repro/`` contains an ascent-iteration loop.
* :class:`AscentRule` — the per-iteration *update strategy*.  The rule
  library lives in :mod:`repro.core.rules` (vanilla, momentum,
  nesterov, adam, deepfool, adaptive) and is re-exported here.  Rules
  own per-seed state (e.g. velocity) and are told when finished seeds
  retire from the active batch so they can slice it
  (:meth:`AscentRule.compact`).  Rules that derive their own direction
  from the live tapes (DeepFool) read the engine's per-iteration state
  through the :class:`~repro.core.rules.AscentContext` the engine
  binds before ascending.
* :class:`AscentEngine` — models + oracle + coverage + constraints
  around the loop: pre-disagreement check, per-seed target draws,
  retire-and-compact of finished seeds, tape absorption into coverage.
  Processing a seed set in one call *is* the old batch engine.
* :class:`DeepXplore` — a batch-of-1 facade over the engine preserving
  Algorithm 1's per-seed sequencing (``cycle=``, ``desired_coverage=``,
  ``max_seed_visits=``).  Bit-identical to the historical sequential
  engine under fixed RNG (pinned by ``tests/core/test_engine.py``
  against goldens captured from the pre-unification code).
* :class:`BatchDeepXplore` — a thin alias kept for the historical name.

Coverage semantics: difference-inducing inputs fold their tapes into
the trackers, as the paper specifies — and so do *exhausted* seeds
(their final activations were computed anyway; discarding them made the
trackers lie about what the models were observed doing).  Pass
``absorb_exhausted=False`` for the paper-exact accounting in which only
kept tests count.

Execution model (unchanged from the tape refactor): every iteration
records exactly one :class:`~repro.nn.tape.ForwardPass` per model over
the active batch, which serves the oracle check, both objective
gradients, and coverage absorption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Hyperparams
from repro.core.constraints import Constraint, Unconstrained
from repro.core.objectives import CoverageObjective
from repro.core.oracle import make_oracle
# The rule library moved to repro.core.rules; re-exported here because
# this module is the historical (and still primary) import site.
from repro.core.rules import (ASCENT_RULES, DEFAULT_MOMENTUM_BETA,
                              AdamRule, AdaptiveStepRule, AscentContext,
                              AscentRule, DeepFoolRule, MomentumRule,
                              NesterovRule, VanillaRule, make_rule,
                              rule_from_identity)
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.nn.workspace import Workspace
from repro.utils.rng import as_rng

__all__ = ["AscentRule", "AscentContext", "VanillaRule", "MomentumRule",
           "NesterovRule", "AdamRule", "DeepFoolRule", "AdaptiveStepRule",
           "make_rule", "rule_from_identity", "ASCENT_RULES",
           "DEFAULT_MOMENTUM_BETA", "run_ascent", "AscentEngine",
           "DeepXplore", "BatchDeepXplore", "GeneratedTest",
           "GenerationResult", "normalize_gradient"]


def normalize_gradient(grad):
    """RMS-normalize a batched gradient (per sample).

    The original DeepXplore implementation divides every gradient by its
    root-mean-square before stepping (``normalize`` in the released
    code), which makes the step size ``s`` meaningful across models and
    objectives whose raw gradient magnitudes differ by orders of
    magnitude.
    """
    batch = grad.shape[0]
    flat = grad.reshape(batch, -1)
    rms = np.sqrt((flat ** 2).mean(axis=1, keepdims=True))
    shape = (batch,) + (1,) * (grad.ndim - 1)
    return grad / (rms.reshape(shape) + 1e-8)


@dataclass
class GeneratedTest:
    """One difference-inducing input found by the generator."""

    x: np.ndarray               # the generated input (no batch axis)
    seed_index: int             # which seed it came from
    iterations: int             # ascent iterations used (0 = seed differed)
    predictions: np.ndarray     # per-model predictions on x
    seed_class: object          # seed's agreed class (None for regression)
    elapsed: float              # seconds from seed start to difference


@dataclass
class GenerationResult:
    """Outcome of a generation run over a seed set."""

    tests: list = field(default_factory=list)
    seeds_processed: int = 0
    seeds_disagreed: int = 0     # seeds the models already disagreed on
    seeds_exhausted: int = 0     # seeds that hit max_iterations
    elapsed: float = 0.0
    coverage: dict = field(default_factory=dict)  # model name -> NCov

    @property
    def difference_count(self):
        return len(self.tests)

    def test_inputs(self):
        """Stack all generated inputs into one array."""
        if not self.tests:
            return np.empty((0,))
        return np.stack([t.x for t in self.tests])

    def merge(self, other):
        """Fold another result (e.g. a campaign shard's) into this one.

        Tests keep the (globally unique) ``seed_index`` they were found
        for, and the merged list is re-ordered by it, so merging shard
        results in any order yields the same ``GenerationResult``.
        Counters add; ``elapsed`` adds too and therefore means *total
        compute seconds* after a merge — a parallel driver overwrites it
        with its own wall-clock.  Coverage fractions cannot be combined
        after the fact (a fraction forgets *which* neurons fired), so
        ``coverage`` is cleared; the campaign recomputes it from the
        merged trackers.  Returns ``self`` for chaining.
        """
        self.tests.extend(other.tests)
        self.tests.sort(key=lambda t: t.seed_index)
        self.seeds_processed += other.seeds_processed
        self.seeds_disagreed += other.seeds_disagreed
        self.seeds_exhausted += other.seeds_exhausted
        self.elapsed += other.elapsed
        self.coverage = {}
        return self


# -- the loop -------------------------------------------------------------------
def run_ascent(x, iterations, gradient, *, step, rule=None, constrain=None,
               direction=normalize_gradient, project=None, on_step=None):
    """THE vectorized ascent loop (Algorithm 1 lines 8-19).

    Every gradient-ascent iteration in the repo runs through this one
    body: the engine's joint-optimization ascent and the iterative-FGSM
    baseline alike.  Per iteration it

    1. calls ``gradient(x, iteration)`` for the raw batched gradient,
    2. rewrites it with ``constrain(grad, x)`` (domain constraints),
    3. maps it through ``direction`` (RMS-normalize by default;
       ``np.sign`` for FGSM; ``None`` to use the raw gradient),
    4. asks the ``rule`` for the step direction and takes the step —
       scaled by ``step``, unless the rule declares ``absolute_step``
       (DeepFool), in which case its update is the displacement itself,
    5. repairs the result with ``project(x_new, x_prev)``,
    6. hands the stepped batch to ``on_step(x, iteration)``, which may
       return a boolean *keep* mask: finished rows retire, and the loop
       compacts both ``x`` and the rule's per-seed state to the kept
       rows (``None`` keeps every row).

    Returns the final active batch — the rows that never finished
    (empty once every row retired).
    """
    rule = rule if rule is not None else VanillaRule()
    rule.reset(x)
    for iteration in range(1, iterations + 1):
        grad = gradient(x, iteration)
        if constrain is not None:
            grad = constrain(grad, x)
        if direction is not None:
            grad = direction(grad)
        delta = rule.update(grad)
        stepped = x + (delta if rule.absolute_step else step * delta)
        x = project(stepped, x) if project is not None else stepped
        if on_step is not None:
            keep = on_step(x, iteration)
            if keep is not None and not keep.all():
                x = x[keep]
                rule.compact(keep)
                if x.shape[0] == 0:
                    break
    return x


# -- the engine -----------------------------------------------------------------
class AscentEngine:
    """Whitebox differential test generator (paper Algorithm 1),
    vectorized over the seed set and composed with an ascent rule.

    Parameters
    ----------
    models:
        Two or more trained networks with identical input domains.
    hyperparams:
        :class:`~repro.core.config.Hyperparams`; paper defaults per
        dataset live in ``PAPER_HYPERPARAMS``.
    constraint:
        A :class:`~repro.core.constraints.Constraint`; defaults to
        pixel clipping only.  Constraints with per-seed state
        (occlusion patches) are cloned per seed.
    task:
        ``"classification"`` or ``"regression"``.
    trackers:
        Optional pre-existing coverage trackers (one per model); created
        fresh otherwise.  Sharing trackers across runs accumulates
        coverage, which is how Table 8 measures time-to-full-coverage.
    rule:
        The :class:`AscentRule` driving line 14; defaults to
        :class:`VanillaRule`.
    update_coverage_with_tests:
        When False, no tape is ever folded into the trackers.
    coverage_factory:
        Pluggable obj2: ``callable(trackers, rng)`` returning a coverage
        objective with ``pick()``/``gradient_from_tapes()``.  Default is
        Algorithm 1's one-neuron-per-model rule; extensions supply
        variants (e.g. multi-neuron).
    absorb_exhausted:
        Fold the final tapes of seeds that hit ``max_iterations`` into
        coverage (default).  ``False`` restores the paper-exact
        accounting in which only difference-inducing inputs count.
    use_workspace:
        Reuse one preallocated :class:`~repro.nn.workspace.Workspace`
        per model across ascent iterations (default).  The engine's
        consume-before-next-forward discipline makes this safe; disable
        it to hold tapes alive across iterations (debugging).
    """

    def __init__(self, models, hyperparams=None, constraint=None,
                 task="classification", trackers=None, rng=None, rule=None,
                 update_coverage_with_tests=True, coverage_factory=None,
                 absorb_exhausted=True, use_workspace=True):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        dtypes_seen = {np.dtype(m.dtype) for m in self.models}
        if len(dtypes_seen) > 1:
            raise ConfigError(
                "all models must share one compute dtype, got "
                f"{sorted(d.name for d in dtypes_seen)}; convert with "
                "network_from_payload(network_to_payload(m), dtype=...)")
        self.dtype = dtypes_seen.pop()
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        if not isinstance(self.constraint, Constraint):
            raise ConfigError("constraint must be a Constraint instance")
        self.task = task
        self.oracle = make_oracle(self.models, task)
        self.rng = as_rng(rng)
        if trackers is None:
            trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                        for m in self.models]
        if len(trackers) != len(self.models):
            raise ConfigError("need exactly one tracker per model")
        self.trackers = list(trackers)
        self.rule = rule if rule is not None else VanillaRule()
        if not isinstance(self.rule, AscentRule):
            raise ConfigError("rule must be an AscentRule instance")
        if task == "regression" and not self.rule.supports_regression:
            raise ConfigError(
                f"the {self.rule.name} rule does not support regression "
                "tasks")
        self.update_coverage_with_tests = bool(update_coverage_with_tests)
        self.coverage_factory = coverage_factory or (
            lambda trackers, rng: CoverageObjective(trackers, rng=rng))
        self.absorb_exhausted = bool(absorb_exhausted)
        self.use_workspace = bool(use_workspace)
        self._workspaces = ([Workspace() for _ in self.models]
                            if self.use_workspace
                            else [None] * len(self.models))

    # -- objective pieces, batched ----------------------------------------------
    def _run_models(self, x):
        """One recorded forward pass per model over the active batch.

        With ``use_workspace`` each model draws its buffers from its own
        reusable workspace, which invalidates the *previous* iteration's
        tapes — the loop always consumes a tape's gradients and coverage
        before recording the next forward, so no stale view is ever read.
        """
        return [model.run(x, workspace=ws)
                for model, ws in zip(self.models, self._workspaces)]

    def _differential_gradient(self, tapes, rows, targets, seed_classes):
        """Per-sample gradient of obj1 with per-sample target models.

        ``rows`` maps active samples to rows of the tapes' batch (the
        batch may still contain just-retired samples); the returned
        gradient covers only the active rows.  One backward per model:
        the per-sample seed matrix carries each sample's class column and
        target sign, so no per-class sub-batching is needed.
        """
        lam = self.hp.lambda1
        batch = tapes[0].batch_size
        grad = None
        if self.task == "regression":
            out_ndim = len(self.models[0].output_shape)
            for k, tape in enumerate(tapes):
                sign = np.zeros((batch,) + (1,) * out_ndim,
                                dtype=tape.dtype)
                sign[rows] = np.where(
                    targets == k, -lam, 1.0).reshape((-1,) + (1,) * out_ndim)
                g = tape.gradient_of_output(
                    np.broadcast_to(sign, (batch,)
                                    + tuple(self.models[0].output_shape)))
                grad = g if grad is None else grad + g
            return grad[rows]
        n_classes = self.models[0].output_shape[0]
        for k, tape in enumerate(tapes):
            seed = np.zeros((batch, n_classes), dtype=tape.dtype)
            seed[rows, seed_classes] = np.where(targets == k, -lam, 1.0)
            g = tape.gradient_of_output(seed)
            grad = g if grad is None else grad + g
        return grad[rows]

    def _coverage_gradient(self, tapes, rows, coverage):
        coverage.pick()
        return coverage.gradient_from_tapes(tapes)[rows]

    def _joint_gradient(self, tapes, rows, targets, seed_classes, coverage):
        """obj1 + lambda2*obj2 with ONE fused backward per model.

        Each model's coverage-neuron seed (scaled by lambda2) is
        injected into the same sweep that carries its differential
        seed — see :meth:`ForwardPass.gradient_joint`.  The fused sweep
        reorders float accumulation versus summing two sweeps, so this
        path is float32-only; float64 keeps the bit-pinned two-sweep
        golden path.
        """
        lam = self.hp.lambda1
        lam2 = self.hp.lambda2
        batch = tapes[0].batch_size
        neurons = coverage.pick()
        grad = None
        if self.task == "regression":
            out_ndim = len(self.models[0].output_shape)
            out_shape = tuple(self.models[0].output_shape)
            for k, tape in enumerate(tapes):
                sign = np.zeros((batch,) + (1,) * out_ndim,
                                dtype=tape.dtype)
                sign[rows] = np.where(
                    targets == k, -lam, 1.0).reshape((-1,) + (1,) * out_ndim)
                g = tape.gradient_joint(
                    np.broadcast_to(sign, (batch,) + out_shape),
                    neurons[k], lam2)
                grad = g if grad is None else grad + g
            return grad[rows]
        n_classes = self.models[0].output_shape[0]
        for k, tape in enumerate(tapes):
            seed = np.zeros((batch, n_classes), dtype=tape.dtype)
            seed[rows, seed_classes] = np.where(targets == k, -lam, 1.0)
            g = tape.gradient_joint(seed, neurons[k], lam2)
            grad = g if grad is None else grad + g
        return grad[rows]

    # -- per-seed constraint state ----------------------------------------------
    def _setup_constraints(self, x):
        """Per-seed constraint instances when per-seed state matters.

        A constraint whose :meth:`setup` draws randomness (occlusion
        patches) is cloned once per active seed, so each seed ascends
        under its own draw.  Stateless constraints return ``None`` and
        keep the vectorized single-instance path.
        """
        if not self.constraint.per_seed_state:
            self.constraint.setup(x[0], self.rng)
            return None
        constraints = []
        for i in range(x.shape[0]):
            per_seed = self.constraint.clone()
            per_seed.setup(x[i], self.rng)
            constraints.append(per_seed)
        return constraints

    def _apply_constraints(self, constraints, grad, x):
        if constraints is None:
            return self.constraint.apply(grad, x)
        out = np.empty_like(grad)
        for i, per_seed in enumerate(constraints):
            out[i] = per_seed.apply(grad[i:i + 1], x[i:i + 1])[0]
        return out

    def _project_constraints(self, constraints, x_new, x_prev):
        if constraints is None:
            return self.constraint.project(x_new, x_prev)
        out = np.empty_like(x_new)
        for i, per_seed in enumerate(constraints):
            out[i] = per_seed.project(x_new[i:i + 1], x_prev[i:i + 1])[0]
        return out

    def _absorb_tapes(self, tapes, rows):
        """Fold the given rows of the iteration's tapes into each
        model's coverage — no re-execution."""
        if not self.update_coverage_with_tests:
            return
        for tracker, tape in zip(self.trackers, tapes):
            tracker.update_from_tape(tape, rows=rows)

    # -- the ascent -----------------------------------------------------------
    def _ascend(self, seeds, result, max_tests, start, seed_scales=None):
        """Ascend one seed batch, appending to ``result`` in place.

        Seed indices on the appended tests are positions within
        ``seeds``; :meth:`generate_from_seed` and campaign shards
        rewrite them into their own index spaces.  ``seed_scales``
        aligns with ``seeds`` and is sliced to the rows that actually
        ascend before reaching the rule.
        """
        n = seeds.shape[0]
        # Seeds the models already disagree on are immediate tests.
        tapes = self._run_models(seeds)
        outputs = [tape.outputs() for tape in tapes]
        pre_differs = self.oracle.differs_from_outputs(outputs)
        pre_preds = self.oracle.predictions_from_outputs(outputs)
        active_idx = []
        for i in range(n):
            if pre_differs[i]:
                result.tests.append(GeneratedTest(
                    x=seeds[i].copy(), seed_index=i, iterations=0,
                    predictions=pre_preds[:, i], seed_class=None,
                    elapsed=time.perf_counter() - start))
                result.seeds_disagreed += 1
            else:
                active_idx.append(i)
        if result.seeds_disagreed:
            self._absorb_tapes(tapes, np.flatnonzero(pre_differs))
        if not active_idx or (max_tests is not None
                              and len(result.tests) >= max_tests):
            return

        x = seeds[active_idx].copy()
        if self.task == "classification":
            seed_classes = outputs[0][active_idx].argmax(axis=1)
        else:
            seed_classes = np.zeros(len(active_idx), dtype=int)
        # Line 6: each seed draws its own random target model.
        coverage = self.coverage_factory(self.trackers, self.rng)
        # Mutable per-iteration state shared by the loop callbacks:
        # ``tapes``/``rows`` always describe the latest recorded forward
        # (``rows`` maps active samples to tape rows, since the tapes
        # may still cover just-retired samples).
        st = {
            "tapes": tapes,
            "rows": np.asarray(active_idx),
            "index_map": np.asarray(active_idx),
            "targets": self.rng.integers(0, len(self.models),
                                         size=len(active_idx)),
            "seed_classes": seed_classes,
            "constraints": None,
            "aborted": False,
            "x": x,
        }
        st["constraints"] = self._setup_constraints(x)

        def gradient(x_cur, iteration):
            st["x"] = x_cur
            if not self.rule.consumes_gradient:
                # The rule derives its direction from the bound context
                # (DeepFool); skip the obj1/obj2 backwards entirely —
                # coverage absorption is unaffected, it reads tapes.
                return np.zeros_like(x_cur)
            if self.hp.lambda2 > 0.0 and self.dtype == np.float32:
                return self._joint_gradient(
                    st["tapes"], st["rows"], st["targets"],
                    st["seed_classes"], coverage)
            grad = self._differential_gradient(
                st["tapes"], st["rows"], st["targets"], st["seed_classes"])
            if self.hp.lambda2 > 0.0:
                grad = grad + self.hp.lambda2 * self._coverage_gradient(
                    st["tapes"], st["rows"], coverage)
            return grad

        def constrain(grad, x_cur):
            return self._apply_constraints(st["constraints"], grad, x_cur)

        def project(x_new, x_prev):
            return self._project_constraints(st["constraints"], x_new,
                                             x_prev)

        def on_step(x_cur, iteration):
            # The stepped batch's tapes serve the oracle check now and,
            # if rows stay active, the next iteration's gradients.
            tapes = self._run_models(x_cur)
            outputs = [tape.outputs() for tape in tapes]
            differs = self.oracle.differs_from_outputs(outputs)
            st["tapes"] = tapes
            st["rows"] = np.arange(x_cur.shape[0])
            if not differs.any():
                return None
            preds = self.oracle.predictions_from_outputs(outputs)
            finished = np.flatnonzero(differs)
            for pos in finished:
                result.tests.append(GeneratedTest(
                    x=x_cur[pos].copy(),
                    seed_index=int(st["index_map"][pos]),
                    iterations=iteration,
                    predictions=preds[:, pos],
                    seed_class=(int(st["seed_classes"][pos])
                                if self.task == "classification"
                                else None),
                    elapsed=time.perf_counter() - start))
            self._absorb_tapes(tapes, finished)
            if max_tests is not None and len(result.tests) >= max_tests:
                st["aborted"] = True
                return np.zeros(x_cur.shape[0], dtype=bool)
            keep = ~differs
            st["index_map"] = st["index_map"][keep]
            st["targets"] = st["targets"][keep]
            st["seed_classes"] = st["seed_classes"][keep]
            if st["constraints"] is not None:
                st["constraints"] = [c for c, k
                                     in zip(st["constraints"], keep) if k]
            st["rows"] = np.flatnonzero(keep)
            return keep

        if self.rule.accepts_seed_scales:
            # Pending scales are per-run inputs: always (re)set them so
            # a scale-less run never inherits a previous run's scales.
            scales = (None if seed_scales is None
                      else np.asarray(seed_scales)[active_idx])
            self.rule.set_seed_scales(scales)
        self.rule.bind(AscentContext(st, self.hp.step, constrain,
                                     self.task))
        try:
            remaining = run_ascent(x, self.hp.max_iterations, gradient,
                                   step=self.hp.step, rule=self.rule,
                                   constrain=constrain, project=project,
                                   on_step=on_step)
        finally:
            # The context holds live tapes; never let it outlive the
            # ascent (rules must stay picklable for campaign specs).
            self.rule.bind(None)
        if st["aborted"]:
            return
        if remaining.shape[0]:
            result.seeds_exhausted = int(remaining.shape[0])
            if self.absorb_exhausted:
                # Line 18's counterpart for seeds that never flipped:
                # their final activations are already on the tapes.
                self._absorb_tapes(st["tapes"], st["rows"])

    # -- drivers --------------------------------------------------------------
    def run(self, seeds, max_tests=None, seed_scales=None):
        """Process all seeds in one vectorized ascent; returns results.

        ``seed_scales`` (one float per seed) feeds rules that honour
        per-seed step scaling (:class:`AdaptiveStepRule`); passing it to
        any other rule is a :class:`~repro.errors.ConfigError`.
        """
        seeds = np.asarray(seeds, dtype=self.dtype)
        if seed_scales is not None:
            if not self.rule.accepts_seed_scales:
                raise ConfigError(
                    f"the {self.rule.name} rule does not accept per-seed "
                    "step scales")
            seed_scales = np.asarray(seed_scales, dtype=np.float64)
            if seed_scales.shape != (seeds.shape[0],):
                raise ConfigError(
                    f"need one seed scale per seed; got shape "
                    f"{seed_scales.shape} for {seeds.shape[0]} seed(s)")
        result = GenerationResult()
        start = time.perf_counter()
        if seeds.shape[0] == 0:
            # An empty corpus is a clean no-op result, not a reshape
            # crash deep in the forward pass (campaign shards and fuzz
            # waves may legitimately drain to nothing).
            return self._finalize(result, start)
        result.seeds_processed = seeds.shape[0]
        self._ascend(seeds, result, max_tests, start,
                     seed_scales=seed_scales)
        return self._finalize(result, start)

    def generate_from_seed(self, seed_x, seed_index=0):
        """Run gradient ascent from one seed (a batch of one); returns a
        :class:`GeneratedTest` or ``None`` if the seed exhausted.

        ``seed_x`` is a single input without batch axis.
        """
        start = time.perf_counter()
        x = np.asarray(seed_x, dtype=self.dtype)[None, ...]
        result = GenerationResult()
        self._ascend(x, result, None, start)
        if not result.tests:
            return None
        test = result.tests[0]
        test.seed_index = seed_index
        return test

    def _finalize(self, result, start):
        result.elapsed = time.perf_counter() - start
        result.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return result

    def mean_coverage(self):
        """Mean neuron coverage across the tested models."""
        return float(np.mean([t.coverage() for t in self.trackers]))


class DeepXplore(AscentEngine):
    """Batch-of-1 facade: Algorithm 1 exactly as the paper sequences it.

    Seeds are processed one at a time — each seed's ascent is a
    batch-of-one call into the shared engine, so the per-seed sequencing
    (each seed draws its target model, constraint state, and coverage
    picks in turn, and sees the coverage its predecessors accumulated)
    matches the paper's pseudocode and the historical sequential engine
    bit-for-bit under fixed RNG.  Prefer :class:`AscentEngine` (whole
    seed set per call) when per-seed sequencing doesn't matter: same
    results, a fraction of the wall-clock.
    """

    # -- seed-set driver ----------------------------------------------------------
    def run(self, seeds, desired_coverage=None, max_tests=None,
            cycle=False, max_seed_visits=None):
        """Process a seed set (the paper's main loop, lines 3-21).

        Stops when seeds are exhausted (or, with ``cycle=True``, keeps
        cycling through them as Algorithm 1's ``cycle(x in seed_set)``
        does) until ``desired_coverage`` (mean NCov across models),
        ``max_tests``, or the ``max_seed_visits`` budget is reached.
        """
        seeds = np.asarray(seeds, dtype=self.dtype)
        result = GenerationResult()
        start = time.perf_counter()
        indices = range(seeds.shape[0])
        while seeds.shape[0]:   # cycling over an empty set is a no-op
            for i in indices:
                if self._done(result, desired_coverage, max_tests):
                    break
                if (max_seed_visits is not None
                        and result.seeds_processed >= max_seed_visits):
                    break
                test = self.generate_from_seed(seeds[i], seed_index=i)
                result.seeds_processed += 1
                if test is None:
                    result.seeds_exhausted += 1
                elif test.iterations == 0:
                    result.seeds_disagreed += 1
                    result.tests.append(test)
                else:
                    result.tests.append(test)
            budget_hit = (max_seed_visits is not None
                          and result.seeds_processed >= max_seed_visits)
            if (not cycle or budget_hit
                    or self._done(result, desired_coverage, max_tests)):
                break
        result.elapsed = time.perf_counter() - start
        result.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return result

    def _done(self, result, desired_coverage, max_tests):
        if max_tests is not None and len(result.tests) >= max_tests:
            return True
        if desired_coverage is not None:
            mean_cov = float(np.mean([t.coverage() for t in self.trackers]))
            if mean_cov >= desired_coverage:
                return True
        return False


class BatchDeepXplore(AscentEngine):
    """Thin alias of :class:`AscentEngine`, kept for the historical
    name.  The vectorized whole-seed-set engine *is* the unified engine;
    new code should say ``AscentEngine``."""
