"""Batched test generation: many seeds per ascent loop.

Algorithm 1 processes one seed at a time; every iteration pays a full
forward/backward pass over each model for a single input.  Batching
amortizes that cost: all active seeds step together, finished seeds are
retired from the batch, and per-seed bookkeeping (target model, seed
class, iteration of first difference) is tracked vectorized.

Execution model: each loop iteration records exactly one
:class:`~repro.nn.tape.ForwardPass` per model over the active batch.
The tape feeds the oracle check, both objective gradients, and coverage
absorption of newly difference-inducing samples.  The differential term
is one backward per model — per-sample target signs and seed classes are
folded into a single per-sample gradient seed matrix, replacing the
per-class sub-batch passes of the pre-tape implementation.

Semantics relative to :class:`repro.core.DeepXplore`:

* each seed draws its own random target model, and constraints carrying
  per-seed state (occlusion patch positions) are cloned per seed — every
  seed ascends under its own independently drawn patches, matching the
  sequential engine's semantics.  Stateless constraints keep the fully
  vectorized single-instance path;
* the coverage objective picks one shared set of uncovered neurons per
  iteration (as the sequential algorithm does per seed);
* results are equivalent difference-inducing inputs, found at a fraction
  of the wall-clock (see ``benchmarks/test_batch_throughput.py`` and
  ``benchmarks/test_forward_reuse.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import Hyperparams
from repro.core.constraints import Unconstrained
from repro.core.generator import (GeneratedTest, GenerationResult,
                                  normalize_gradient)
from repro.core.objectives import CoverageObjective
from repro.core.oracle import make_oracle
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["BatchDeepXplore"]


class BatchDeepXplore:
    """Vectorized variant of the DeepXplore generator."""

    def __init__(self, models, hyperparams=None, constraint=None,
                 task="classification", trackers=None, rng=None):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        self.task = task
        self.oracle = make_oracle(self.models, task)
        self.rng = as_rng(rng)
        if trackers is None:
            trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                        for m in self.models]
        if len(trackers) != len(self.models):
            raise ConfigError("need exactly one tracker per model")
        self.trackers = list(trackers)

    # -- objective pieces, batched ----------------------------------------------
    def _run_models(self, x):
        """One recorded forward pass per model over the active batch."""
        return [model.run(x) for model in self.models]

    def _differential_gradient(self, tapes, rows, targets, seed_classes):
        """Per-sample gradient of obj1 with per-sample target models.

        ``rows`` maps active samples to rows of the tapes' batch (the
        batch may still contain just-retired samples); the returned
        gradient covers only the active rows.  One backward per model:
        the per-sample seed matrix carries each sample's class column and
        target sign, so no per-class sub-batching is needed.
        """
        lam = self.hp.lambda1
        batch = tapes[0].batch_size
        grad = None
        if self.task == "regression":
            out_ndim = len(self.models[0].output_shape)
            for k, tape in enumerate(tapes):
                sign = np.zeros((batch,) + (1,) * out_ndim)
                sign[rows] = np.where(
                    targets == k, -lam, 1.0).reshape((-1,) + (1,) * out_ndim)
                g = tape.gradient_of_output(
                    np.broadcast_to(sign, (batch,)
                                    + tuple(self.models[0].output_shape)))
                grad = g if grad is None else grad + g
            return grad[rows]
        n_classes = self.models[0].output_shape[0]
        for k, tape in enumerate(tapes):
            seed = np.zeros((batch, n_classes))
            seed[rows, seed_classes] = np.where(targets == k, -lam, 1.0)
            g = tape.gradient_of_output(seed)
            grad = g if grad is None else grad + g
        return grad[rows]

    def _coverage_gradient(self, tapes, rows, coverage):
        coverage.pick()
        return coverage.gradient_from_tapes(tapes)[rows]

    # -- per-seed constraint state ----------------------------------------------
    def _setup_constraints(self, x):
        """Per-seed constraint instances when per-seed state matters.

        A constraint whose :meth:`setup` draws randomness (occlusion
        patches) is cloned once per active seed, so each seed ascends
        under its own draw — the sequential engine's semantics.
        Stateless constraints return ``None`` and keep the vectorized
        single-instance path.
        """
        if not self.constraint.per_seed_state:
            self.constraint.setup(x[0], self.rng)
            return None
        constraints = []
        for i in range(x.shape[0]):
            per_seed = self.constraint.clone()
            per_seed.setup(x[i], self.rng)
            constraints.append(per_seed)
        return constraints

    def _apply_constraints(self, constraints, grad, x):
        if constraints is None:
            return self.constraint.apply(grad, x)
        out = np.empty_like(grad)
        for i, per_seed in enumerate(constraints):
            out[i] = per_seed.apply(grad[i:i + 1], x[i:i + 1])[0]
        return out

    def _project_constraints(self, constraints, x_new, x_prev):
        if constraints is None:
            return self.constraint.project(x_new, x_prev)
        out = np.empty_like(x_new)
        for i, per_seed in enumerate(constraints):
            out[i] = per_seed.project(x_new[i:i + 1], x_prev[i:i + 1])[0]
        return out

    # -- the batched loop ----------------------------------------------------------
    def run(self, seeds, max_tests=None):
        """Process all seeds in one vectorized ascent; returns results."""
        seeds = np.asarray(seeds, dtype=np.float64)
        n = seeds.shape[0]
        result = GenerationResult()
        start = time.perf_counter()
        if n == 0:
            # An empty corpus is a clean no-op result, not a reshape
            # crash deep in the forward pass (campaign shards and fuzz
            # waves may legitimately drain to nothing).
            return self._finalize(result, start)

        # Seeds the models already disagree on are immediate tests.
        tapes = self._run_models(seeds)
        outputs = [tape.outputs() for tape in tapes]
        pre_differs = self.oracle.differs_from_outputs(outputs)
        pre_preds = self.oracle.predictions_from_outputs(outputs)
        active_idx = []
        for i in range(n):
            if pre_differs[i]:
                test = GeneratedTest(
                    x=seeds[i].copy(), seed_index=i, iterations=0,
                    predictions=pre_preds[:, i], seed_class=None,
                    elapsed=time.perf_counter() - start)
                result.tests.append(test)
                result.seeds_disagreed += 1
            else:
                active_idx.append(i)
        if result.seeds_disagreed:
            self._absorb_tapes(tapes, np.flatnonzero(pre_differs))
        result.seeds_processed = n

        if not active_idx or (max_tests is not None
                              and len(result.tests) >= max_tests):
            return self._finalize(result, start)

        x = seeds[active_idx].copy()
        index_map = np.asarray(active_idx)
        targets = self.rng.integers(0, len(self.models),
                                    size=index_map.size)
        if self.task == "classification":
            seed_classes = outputs[0][active_idx].argmax(axis=1)
        else:
            seed_classes = np.zeros(index_map.size, dtype=int)
        coverage = CoverageObjective(self.trackers, rng=self.rng)
        constraints = self._setup_constraints(x)
        # Rows of the current tapes' batch holding the active samples —
        # the seed tapes cover all seeds, later tapes only active ones.
        rows = np.asarray(active_idx)

        for iteration in range(1, self.hp.max_iterations + 1):
            grad = self._differential_gradient(tapes, rows, targets,
                                               seed_classes)
            if self.hp.lambda2 > 0.0:
                grad = grad + self.hp.lambda2 * \
                    self._coverage_gradient(tapes, rows, coverage)
            grad = self._apply_constraints(constraints, grad, x)
            grad = normalize_gradient(grad)
            x = self._project_constraints(
                constraints, x + self.hp.step * grad, x)

            tapes = self._run_models(x)
            outputs = [tape.outputs() for tape in tapes]
            differs = self.oracle.differs_from_outputs(outputs)
            rows = np.arange(x.shape[0])
            if differs.any():
                preds = self.oracle.predictions_from_outputs(outputs)
                finished = np.flatnonzero(differs)
                for pos in finished:
                    test = GeneratedTest(
                        x=x[pos].copy(),
                        seed_index=int(index_map[pos]),
                        iterations=iteration,
                        predictions=preds[:, pos],
                        seed_class=(int(seed_classes[pos])
                                    if self.task == "classification"
                                    else None),
                        elapsed=time.perf_counter() - start)
                    result.tests.append(test)
                self._absorb_tapes(tapes, finished)
                if (max_tests is not None
                        and len(result.tests) >= max_tests):
                    return self._finalize(result, start)
                keep = ~differs
                x = x[keep]
                index_map = index_map[keep]
                targets = targets[keep]
                seed_classes = seed_classes[keep]
                if constraints is not None:
                    constraints = [c for c, k in zip(constraints, keep) if k]
                rows = np.flatnonzero(keep)
                if x.shape[0] == 0:
                    return self._finalize(result, start)
        result.seeds_exhausted = int(x.shape[0])
        return self._finalize(result, start)

    def _absorb_tapes(self, tapes, rows):
        """Fold difference-inducing rows of the iteration's tapes into
        each model's coverage — no re-execution."""
        for tracker, tape in zip(self.trackers, tapes):
            tracker.update_from_tape(tape, rows=rows)

    def _finalize(self, result, start):
        result.elapsed = time.perf_counter() - start
        result.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return result

    def mean_coverage(self):
        return float(np.mean([t.coverage() for t in self.trackers]))
