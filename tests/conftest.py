"""Shared fixtures: smoke-scale datasets and cached trained models.

Model/dataset fixtures are session-scoped and use the on-disk cache, so
the first test session pays the (small) training cost once and later
sessions start instantly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.models import get_model, get_trio
from repro.nn import dtypes


@pytest.fixture(autouse=True, scope="session")
def _pin_float64_default():
    """Pin the suite to double precision.

    The gradchecks, pinned engine goldens, and cached zoo weights were
    all captured at float64; the library's float32 default is exercised
    explicitly (tests/nn/test_dtypes.py, tests/backends) rather than
    ambiently.
    """
    previous = dtypes.set_default_dtype(np.float64)
    yield
    dtypes.set_default_dtype(previous)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mnist_smoke():
    return load_dataset("mnist", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def imagenet_smoke():
    return load_dataset("imagenet", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def driving_smoke():
    return load_dataset("driving", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def pdf_smoke():
    return load_dataset("pdf", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def drebin_smoke():
    return load_dataset("drebin", scale="smoke", seed=0)


@pytest.fixture(scope="session")
def mnist_trio(mnist_smoke):
    return get_trio("mnist", scale="smoke", seed=0, dataset=mnist_smoke)


@pytest.fixture(scope="session")
def driving_trio(driving_smoke):
    return get_trio("driving", scale="smoke", seed=0, dataset=driving_smoke)


@pytest.fixture(scope="session")
def pdf_trio(pdf_smoke):
    return get_trio("pdf", scale="smoke", seed=0, dataset=pdf_smoke)


@pytest.fixture(scope="session")
def drebin_trio(drebin_smoke):
    return get_trio("drebin", scale="smoke", seed=0, dataset=drebin_smoke)


@pytest.fixture(scope="session")
def lenet1(mnist_smoke):
    return get_model("MNI_C1", scale="smoke", seed=0, dataset=mnist_smoke)


@pytest.fixture(scope="session")
def lenet5(mnist_smoke):
    return get_model("MNI_C3", scale="smoke", seed=0, dataset=mnist_smoke)
