"""Seed-selection strategies.

The paper draws seeds uniformly from the test set.  Two refinements a
practitioner reaches for immediately:

* **class-balanced** — equal seeds per class, so rare classes get tested;
* **low-confidence** — seeds the models are least sure about, which sit
  near decision boundaries and convert to differences in fewer ascent
  iterations (measured in ``benchmarks/test_ablation_seed_selection.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["select_seeds", "random_seeds", "class_balanced_seeds",
           "low_confidence_seeds", "strategy_names"]


def strategy_names():
    """The registered strategy names (CLI ``--seed-strategy`` choices)."""
    return sorted(_STRATEGIES)


def random_seeds(dataset, count, rng=None, models=None):
    """Uniform draw from the test split (the paper's strategy)."""
    return dataset.sample_seeds(count, as_rng(rng))


def class_balanced_seeds(dataset, count, rng=None, models=None):
    """Equal number of seeds per class (remainder spread round-robin)."""
    rng = as_rng(rng)
    y = np.asarray(dataset.y_test)
    classes = np.unique(y)
    per_class = count // classes.size
    remainder = count - per_class * classes.size
    chosen = []
    for i, cls in enumerate(rng.permutation(classes)):
        members = np.flatnonzero(y == cls)
        want = per_class + (1 if i < remainder else 0)
        take = min(want, members.size)
        chosen.extend(rng.choice(members, size=take, replace=False))
    chosen = np.asarray(chosen)
    rng.shuffle(chosen)
    return dataset.x_test[chosen].copy(), y[chosen].copy()


def low_confidence_seeds(dataset, count, rng=None, models=None):
    """Seeds with the lowest mean top-probability across ``models``.

    Requires classification models; ties are broken randomly so repeated
    runs don't always test the exact same inputs.
    """
    if not models:
        raise ConfigError("low-confidence selection needs models")
    rng = as_rng(rng)
    confidence = np.mean(
        [m.predict(dataset.x_test).max(axis=1) for m in models], axis=0)
    jitter = rng.uniform(0.0, 1e-9, size=confidence.shape)
    order = np.argsort(confidence + jitter)
    chosen = order[:count]
    return (dataset.x_test[chosen].copy(),
            np.asarray(dataset.y_test)[chosen].copy())


_STRATEGIES = {
    "random": random_seeds,
    "balanced": class_balanced_seeds,
    "low-confidence": low_confidence_seeds,
}


def select_seeds(strategy, dataset, count, rng=None, models=None):
    """Dispatch on strategy name."""
    if strategy not in _STRATEGIES:
        raise ConfigError(
            f"unknown seed strategy {strategy!r}; known: "
            f"{sorted(_STRATEGIES)}")
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    count = min(count, dataset.x_test.shape[0])
    return _STRATEGIES[strategy](dataset, count, rng=rng, models=models)
