"""Batched test generation: many seeds per ascent loop.

Algorithm 1 processes one seed at a time; every iteration pays a full
forward/backward pass over each model for a single input.  Batching
amortizes that cost: all active seeds step together, finished seeds are
retired from the batch, and per-seed bookkeeping (target model, seed
class, iteration of first difference) is tracked vectorized.

Semantics relative to :class:`repro.core.DeepXplore`:

* the per-seed random target model and the domain constraint state are
  chosen once per batch run (one constraint instance serves the batch,
  so patch positions are shared — use batch_size=1 if per-seed patches
  matter);
* the coverage objective picks one shared set of uncovered neurons per
  iteration (as the sequential algorithm does per seed);
* results are equivalent difference-inducing inputs, found at a fraction
  of the wall-clock (see ``benchmarks/test_batch_throughput.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import Hyperparams
from repro.core.constraints import Unconstrained
from repro.core.generator import (GeneratedTest, GenerationResult,
                                  normalize_gradient)
from repro.core.objectives import CoverageObjective
from repro.core.oracle import make_oracle
from repro.coverage import NeuronCoverageTracker
from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["BatchDeepXplore"]


class BatchDeepXplore:
    """Vectorized variant of the DeepXplore generator."""

    def __init__(self, models, hyperparams=None, constraint=None,
                 task="classification", trackers=None, rng=None):
        if len(models) < 2:
            raise ConfigError("differential testing needs >= 2 models")
        self.models = list(models)
        self.hp = hyperparams or Hyperparams()
        self.constraint = constraint or Unconstrained()
        self.task = task
        self.oracle = make_oracle(self.models, task)
        self.rng = as_rng(rng)
        if trackers is None:
            trackers = [NeuronCoverageTracker(m, threshold=self.hp.threshold)
                        for m in self.models]
        if len(trackers) != len(self.models):
            raise ConfigError("need exactly one tracker per model")
        self.trackers = list(trackers)

    # -- objective pieces, batched ----------------------------------------------
    def _differential_gradient(self, x, targets, seed_classes):
        """Per-sample gradient of obj1 with per-sample target models."""
        grad = np.zeros_like(x)
        lam = self.hp.lambda1
        if self.task == "regression":
            seed = np.ones(self.models[0].output_shape)
            for k, model in enumerate(self.models):
                g = model.input_gradient_of_output(x, seed)
                sign = np.where(targets == k, -lam, 1.0)
                grad += g * sign.reshape((-1,) + (1,) * (x.ndim - 1))
            return grad
        for k, model in enumerate(self.models):
            for cls in np.unique(seed_classes):
                mask = seed_classes == cls
                if not mask.any():
                    continue
                g = model.input_gradient_of_class(x[mask], int(cls))
                sign = np.where(targets[mask] == k, -lam, 1.0)
                grad[mask] += g * sign.reshape((-1,) + (1,) * (x.ndim - 1))
        return grad

    def _coverage_gradient(self, x, coverage):
        coverage.pick()
        return coverage.gradient(x)

    # -- the batched loop ----------------------------------------------------------
    def run(self, seeds, max_tests=None):
        """Process all seeds in one vectorized ascent; returns results."""
        seeds = np.asarray(seeds, dtype=np.float64)
        n = seeds.shape[0]
        result = GenerationResult()
        start = time.perf_counter()

        # Seeds the models already disagree on are immediate tests.
        pre_differs = self.oracle.differs(seeds)
        pre_preds = self.oracle.predictions(seeds)
        active_idx = []
        for i in range(n):
            if pre_differs[i]:
                test = GeneratedTest(
                    x=seeds[i].copy(), seed_index=i, iterations=0,
                    predictions=pre_preds[:, i], seed_class=None,
                    elapsed=time.perf_counter() - start)
                result.tests.append(test)
                result.seeds_disagreed += 1
                self._absorb(test)
            else:
                active_idx.append(i)
        result.seeds_processed = n

        if not active_idx or (max_tests is not None
                              and len(result.tests) >= max_tests):
            return self._finalize(result, start)

        x = seeds[active_idx].copy()
        index_map = np.asarray(active_idx)
        targets = self.rng.integers(0, len(self.models),
                                    size=index_map.size)
        if self.task == "classification":
            seed_classes = self.models[0].predict(x).argmax(axis=1)
        else:
            seed_classes = np.zeros(index_map.size, dtype=int)
        coverage = CoverageObjective(self.trackers, rng=self.rng)
        self.constraint.setup(x[0], self.rng)

        for iteration in range(1, self.hp.max_iterations + 1):
            grad = self._differential_gradient(x, targets, seed_classes)
            if self.hp.lambda2 > 0.0:
                grad = grad + self.hp.lambda2 * \
                    self._coverage_gradient(x, coverage)
            grad = self.constraint.apply(grad, x)
            grad = normalize_gradient(grad)
            x = self.constraint.project(x + self.hp.step * grad, x)

            differs = self.oracle.differs(x)
            if differs.any():
                preds = self.oracle.predictions(x)
                finished = np.flatnonzero(differs)
                for pos in finished:
                    test = GeneratedTest(
                        x=x[pos].copy(),
                        seed_index=int(index_map[pos]),
                        iterations=iteration,
                        predictions=preds[:, pos],
                        seed_class=(int(seed_classes[pos])
                                    if self.task == "classification"
                                    else None),
                        elapsed=time.perf_counter() - start)
                    result.tests.append(test)
                    self._absorb(test)
                if (max_tests is not None
                        and len(result.tests) >= max_tests):
                    return self._finalize(result, start)
                keep = ~differs
                x = x[keep]
                index_map = index_map[keep]
                targets = targets[keep]
                seed_classes = seed_classes[keep]
                if x.shape[0] == 0:
                    return self._finalize(result, start)
        result.seeds_exhausted = int(x.shape[0])
        return self._finalize(result, start)

    def _absorb(self, test):
        batch = test.x[None, ...]
        for tracker in self.trackers:
            tracker.update(batch)

    def _finalize(self, result, start):
        result.elapsed = time.perf_counter() - start
        result.coverage = {m.name: t.coverage()
                           for m, t in zip(self.models, self.trackers)}
        return result

    def mean_coverage(self):
        return float(np.mean([t.coverage() for t in self.trackers]))
