"""Batched generator: equivalence of outcomes with the sequential one."""

import numpy as np
import pytest

from repro.core import (BatchDeepXplore, DeepXplore, LightingConstraint,
                        PAPER_HYPERPARAMS, SingleRectOcclusion,
                        constraint_for_dataset)
from repro.errors import ConfigError


def test_requires_two_models(lenet1):
    with pytest.raises(ConfigError):
        BatchDeepXplore([lenet1])


def test_finds_differences(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(25, np.random.default_rng(3))
    engine = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             LightingConstraint(), rng=5)
    result = engine.run(seeds)
    assert result.difference_count > 0
    assert result.seeds_processed == 25
    for test in result.tests:
        preds = [m.predict(test.x[None]).argmax(axis=1)[0]
                 for m in mnist_trio]
        assert len(set(preds)) > 1
        np.testing.assert_array_equal(preds, test.predictions)


def test_inputs_stay_valid(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(20, np.random.default_rng(4))
    engine = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             LightingConstraint(), rng=6)
    result = engine.run(seeds)
    for test in result.tests:
        assert test.x.min() >= 0.0 and test.x.max() <= 1.0


def test_pre_disagreed_recorded(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(30, np.random.default_rng(5))
    batch = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=7)
    sequential = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=7)
    rb = batch.run(seeds)
    rs = sequential.run(seeds)
    # Pre-disagreement is a model property, identical for both drivers.
    assert rb.seeds_disagreed == rs.seeds_disagreed


def test_comparable_yield_to_sequential(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(25, np.random.default_rng(6))
    batch = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=8)
    sequential = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=8)
    rb = batch.run(seeds)
    rs = sequential.run(seeds)
    assert rb.difference_count >= rs.difference_count // 2
    assert rb.difference_count <= rs.difference_count * 2 + 4


def test_max_tests(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(30, np.random.default_rng(7))
    engine = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             LightingConstraint(), rng=9)
    result = engine.run(seeds, max_tests=3)
    assert result.difference_count >= 3  # may slightly overshoot per wave
    assert result.difference_count <= 3 + 30


def test_regression_batch(driving_trio, driving_smoke):
    seeds, _ = driving_smoke.sample_seeds(20, np.random.default_rng(8))
    engine = BatchDeepXplore(driving_trio, PAPER_HYPERPARAMS["driving"],
                             constraint_for_dataset(driving_smoke),
                             task="regression", rng=10)
    result = engine.run(seeds)
    assert result.difference_count > 0


def test_feature_batch(pdf_trio, pdf_smoke):
    seeds, _ = pdf_smoke.sample_seeds(20, np.random.default_rng(9))
    engine = BatchDeepXplore(pdf_trio, PAPER_HYPERPARAMS["pdf"],
                             constraint_for_dataset(pdf_smoke), rng=11)
    result = engine.run(seeds)
    # Generated PDFs keep integer counts on mutable features.
    mask = pdf_smoke.metadata["mutable_mask"]
    for test in result.tests:
        counts = test.x[mask]
        np.testing.assert_array_equal(counts, np.round(counts))


def _changed_bounding_boxes(result, seeds):
    """Bounding box of changed pixels for each ascent-found test."""
    boxes = []
    for test in result.tests:
        if test.iterations == 0:
            continue
        delta = np.abs(test.x - seeds[test.seed_index])[0]
        rows_hit, cols_hit = np.nonzero(delta > 1e-12)
        if rows_hit.size:
            boxes.append((rows_hit.min(), rows_hit.max(),
                          cols_hit.min(), cols_hit.max()))
    return boxes


def test_occlusion_patches_are_per_seed(mnist_trio, mnist_smoke):
    """Each seed ascends under its own patch draw: every generated test
    changed only one 8x8 rectangle, and the rectangles differ across
    seeds (the old engine shared one position batch-wide)."""
    seeds, _ = mnist_smoke.sample_seeds(30, np.random.default_rng(13))
    engine = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             SingleRectOcclusion(8, 8), rng=14)
    result = engine.run(seeds)
    boxes = _changed_bounding_boxes(result, seeds)
    assert len(boxes) >= 2
    for top, bottom, left, right in boxes:
        assert bottom - top + 1 <= 8
        assert right - left + 1 <= 8
    # 30 independent draws of an 8x8 position in 28x28 collide with
    # probability ~(1/441)^(n-1); all-equal means shared state.
    assert len(set(boxes)) > 1


def test_batch_occlusion_matches_sequential_semantics(mnist_trio,
                                                      mnist_smoke):
    """Sequential-engine invariants hold for the batched engine too:
    occlusion tests stay in [0, 1] and touch only their own patch."""
    seeds, _ = mnist_smoke.sample_seeds(15, np.random.default_rng(14))
    sequential = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            SingleRectOcclusion(8, 8), rng=15)
    batch = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            SingleRectOcclusion(8, 8), rng=15)
    rs = sequential.run(seeds)
    rb = batch.run(seeds)
    for result in (rs, rb):
        for top, bottom, left, right in _changed_bounding_boxes(result,
                                                                seeds):
            assert bottom - top + 1 <= 8 and right - left + 1 <= 8
    # Comparable yield, as for the lighting constraint.
    assert rb.difference_count >= rs.difference_count // 2 - 1


def test_coverage_tracked(mnist_trio, mnist_smoke):
    seeds, _ = mnist_smoke.sample_seeds(20, np.random.default_rng(10))
    engine = BatchDeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                             LightingConstraint(), rng=12)
    result = engine.run(seeds)
    if result.difference_count:
        assert engine.mean_coverage() > 0.0
    assert set(result.coverage) == {m.name for m in mnist_trio}
