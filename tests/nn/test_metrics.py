"""Classification metrics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.metrics import (classification_report, confusion_matrix,
                              precision_recall_f1)


def test_confusion_matrix_basic():
    y_true = [0, 0, 1, 1, 2]
    y_pred = [0, 1, 1, 1, 0]
    matrix = confusion_matrix(y_true, y_pred)
    expected = np.array([[1, 1, 0], [0, 2, 0], [1, 0, 0]])
    np.testing.assert_array_equal(matrix, expected)


def test_confusion_matrix_diagonal_is_correct_count():
    y = np.array([0, 1, 2, 1, 0])
    matrix = confusion_matrix(y, y)
    assert matrix.trace() == 5
    assert matrix.sum() == 5


def test_confusion_matrix_explicit_classes():
    matrix = confusion_matrix([0], [0], num_classes=4)
    assert matrix.shape == (4, 4)


def test_confusion_matrix_shape_mismatch():
    with pytest.raises(ShapeError):
        confusion_matrix([0, 1], [0])


def test_precision_recall_f1():
    y_true = [1, 1, 1, 0, 0]
    y_pred = [1, 1, 0, 1, 0]
    precision, recall, f1 = precision_recall_f1(y_true, y_pred)
    assert precision == pytest.approx(2 / 3)
    assert recall == pytest.approx(2 / 3)
    assert f1 == pytest.approx(2 / 3)


def test_precision_recall_degenerate():
    precision, recall, f1 = precision_recall_f1([0, 0], [0, 0])
    assert (precision, recall, f1) == (0.0, 0.0, 0.0)


def test_classification_report_on_model(pdf_trio, pdf_smoke):
    report = classification_report(pdf_trio[0], pdf_smoke.x_test,
                                   pdf_smoke.y_test,
                                   class_names=["benign", "malicious"])
    assert 0.5 < report["accuracy"] <= 1.0
    assert set(report["per_class"]) == {"benign", "malicious"}
    malicious = report["per_class"]["malicious"]
    assert malicious["support"] == int(
        (np.asarray(pdf_smoke.y_test) == 1).sum())
    assert 0.0 <= malicious["f1"] <= 1.0
    assert report["confusion_matrix"].sum() == pdf_smoke.x_test.shape[0]
