"""Deterministic fault injection for crash-safety tests.

Racing a real ``SIGKILL`` against a fuzz wave gives flaky tests: the
kill lands at a different instruction every run, so the "resumes
bit-identically" assertions chase a moving target.  This module gives
the crash a deterministic address instead.  Production code calls
:func:`fault_point` at the handful of places a crash is interesting
(mid-wave test absorption, between a commit's snapshot writes and its
checkpoint flip, inside the farm daemon's job loop, and the
distribution layer's sync/steal windows — ``dist.pull.entry`` and
``dist.sync.mid`` inside a corpus pull, ``dist.shard.claim`` and
``dist.shard.done`` around a federated host's shard execution); the
call is a no-op unless a *fault plan* arms that point.

A plan comes from the ``REPRO_FAULTS`` environment variable — which is
how it crosses process boundaries into daemons and pool workers — as a
comma-separated list of arms::

    REPRO_FAULTS="corpus.add-test:3"                # kill on 3rd hit
    REPRO_FAULTS="corpus.commit.mid:1,farm.loop:5:raise"

Each arm is ``point:countdown[:action]``.  The countdown decrements on
every hit of the matching point; on reaching zero the arm fires once:

``kill``
    ``os._exit(137)`` — the process vanishes exactly as under
    ``SIGKILL``: no cleanup handlers, no flushes, no atexit.  The
    default action.
``raise``
    Raise :class:`InjectedFault` — an in-process crash the caller may
    catch, for exercising retry/backoff paths without losing the
    process.

Tests running in-process can arm points directly with :func:`inject`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import ConfigError

__all__ = ["InjectedFault", "fault_point", "inject", "reset_faults",
           "KILL_EXIT_CODE"]

ENV_VAR = "REPRO_FAULTS"

#: Exit status of a ``kill`` arm — 128 + SIGKILL(9), what a shell
#: reports for a SIGKILL'd process, so supervisors treat the two alike.
KILL_EXIT_CODE = 137

ACTIONS = ("kill", "raise")

#: Parsed arms for this process (lazy; ``None`` until first use).
_ARMS = None


class InjectedFault(RuntimeError):
    """Raised when a ``raise``-mode fault arm fires.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults simulate crashes, and nothing in the library should swallow
    them as a handled configuration problem.
    """


def _parse(spec):
    """Parse a ``REPRO_FAULTS`` value into a list of arm dicts."""
    arms = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) == 2:
            point, countdown = fields
            action = "kill"
        elif len(fields) == 3:
            point, countdown, action = fields
        else:
            raise ConfigError(
                f"bad fault arm {part!r}; want point:countdown[:action]")
        if action not in ACTIONS:
            raise ConfigError(
                f"unknown fault action {action!r}; want one of {ACTIONS}")
        try:
            remaining = int(countdown)
        except ValueError:
            raise ConfigError(
                f"bad fault countdown {countdown!r} in {part!r}") from None
        if remaining < 1:
            raise ConfigError(
                f"fault countdown must be >= 1, got {remaining}")
        arms.append({"point": point, "remaining": remaining,
                     "action": action})
    return arms


def _plan():
    global _ARMS
    if _ARMS is None:
        _ARMS = _parse(os.environ.get(ENV_VAR, ""))
    return _ARMS


def reset_faults():
    """Drop this process's parsed plan (re-read from the env next hit)."""
    global _ARMS
    _ARMS = None


def fault_point(name):
    """Declare a crash-interesting point; fires any armed fault for it.

    Costs one list scan when no plan is armed, so production call sites
    stay hot-path safe.
    """
    for arm in _plan():
        if arm["point"] != name or arm["remaining"] <= 0:
            continue
        arm["remaining"] -= 1
        if arm["remaining"] == 0:
            if arm["action"] == "kill":
                os._exit(KILL_EXIT_CODE)
            raise InjectedFault(f"injected fault at {name!r}")


@contextmanager
def inject(point, countdown=1, action="raise"):
    """Arm one fault in-process for the duration of a ``with`` block.

    The in-process analogue of ``REPRO_FAULTS`` for tests that keep the
    process alive (``action="raise"``); yields the arm so a test can
    check ``arm["remaining"] == 0`` to confirm the fault really fired.
    """
    if action not in ACTIONS:
        raise ConfigError(
            f"unknown fault action {action!r}; want one of {ACTIONS}")
    arm = {"point": point, "remaining": int(countdown), "action": action}
    plan = _plan()
    plan.append(arm)
    try:
        yield arm
    finally:
        if arm in plan:
            plan.remove(arm)
