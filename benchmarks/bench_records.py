"""The BENCH_fuzz.json record sink.

A plain module — not ``conftest.py`` — on purpose: pytest loads
``conftest.py`` as its own plugin module, so a mutable global defined
there exists twice once a benchmark imports ``benchmarks.conftest``.
Everything here is imported under the single name
``benchmarks.bench_records`` by both the conftest and the benchmarks,
so there is exactly one record list.

Every benchmark test gets a wall-clock record automatically (autouse
fixture in ``conftest.py``); benchmarks with meaningful throughput
numbers add labeled detail records via :func:`record_bench`.
"""

from __future__ import annotations

import json
import os

BENCH_JSON_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               os.pardir, "BENCH_fuzz.json")

#: Records accumulated over the benchmark session, written at exit.
_RECORDS = []


def _current_test_name():
    current = os.environ.get("PYTEST_CURRENT_TEST", "unknown")
    return current.split(" ")[0]


def record_bench(seconds, name=None, label=None, **metrics):
    """Add one machine-readable benchmark record (see BENCH_fuzz.json).

    ``name`` defaults to the currently running test; ``label``
    distinguishes multiple records from one test (e.g. the cold and
    warm phases of the fuzz loop).
    """
    name = name or _current_test_name()
    if label:
        name = f"{name}[{label}]"
    record = {"name": name, "seconds": float(seconds)}
    for key, value in metrics.items():
        record[key] = float(value)
    _RECORDS.append(record)
    return record


def write_records(scale, seed):
    """Write all accumulated records to BENCH_fuzz.json (atomically
    enough for a single writer; the file is fully rewritten)."""
    if not _RECORDS:
        return None
    payload = {
        "schema": 1,
        "scale": scale,
        "seed": seed,
        "benchmarks": sorted(_RECORDS, key=lambda r: r["name"]),
    }
    with open(BENCH_JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return BENCH_JSON_PATH
