"""Table 1: the 15 DNNs, their neuron counts, and accuracies."""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments.common import ExperimentResult
from repro.models import MODEL_ZOO, TRIOS, get_model, model_accuracy

__all__ = ["run_model_zoo"]


def run_model_zoo(scale="small", seed=0, use_cache=True):
    """Train (or load) all 15 zoo models and tabulate Table 1."""
    result = ExperimentResult(
        experiment_id="table1",
        title="DNNs and datasets used to evaluate DeepXplore",
        headers=["Dataset", "DNN name", "Architecture", "# neurons",
                 "# params", "Reported acc (paper)", "Our acc"],
        paper_reference=("15 models; accuracies 92.66%-99.05% for "
                         "classifiers, 1-MSE ~99.9% for DAVE models"),
    )
    for dataset_name, trio in TRIOS.items():
        dataset = load_dataset(dataset_name, scale=scale, seed=seed)
        for model_name in trio:
            spec = MODEL_ZOO[model_name]
            network = get_model(model_name, scale=scale, seed=seed,
                                use_cache=use_cache, dataset=dataset)
            acc = model_accuracy(network, dataset)
            result.rows.append([
                dataset_name, model_name, spec.architecture,
                network.total_neurons, network.parameter_count(),
                spec.reported_accuracy, f"{acc:.2%}",
            ])
    result.notes.append(
        "architectures are scaled-down numpy re-implementations; neuron "
        "counts follow the conv-channel-as-neuron convention")
    return result
