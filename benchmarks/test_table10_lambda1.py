"""Benchmark: Table 10 — first-difference runtime vs lambda1."""

from benchmarks.conftest import SCALE, SEED, run_once
from repro.experiments import run_lambda1_sweep


def test_table10_lambda1(benchmark):
    result = run_once(benchmark, run_lambda1_sweep, scale=SCALE, seed=SEED,
                      repetitions=1)
    assert len(result.rows) == 5
