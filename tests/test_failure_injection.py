"""Failure injection: the library must fail loudly and precisely, not
corrupt results silently."""

import numpy as np
import pytest

from repro.core import DeepXplore, LightingConstraint, PAPER_HYPERPARAMS
from repro.datasets import load_dataset
from repro.errors import ReproError, ShapeError
from repro.models import get_model
from repro.nn import Dense, Network, Trainer


class TestCorruptedWeightCache:
    def test_truncated_cache_file_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dataset = load_dataset("pdf", scale="smoke", seed=0)
        model = get_model("PDF_C1", scale="smoke", seed=0, dataset=dataset)
        # Corrupt the cached weights, then force a reload.
        caches = list(tmp_path.glob("model-*PDF_C1*.npz"))
        assert caches, "model cache file expected"
        caches[0].write_bytes(b"not a zipfile")
        with pytest.raises(Exception):
            get_model("PDF_C1", scale="smoke", seed=0, dataset=dataset)

    def test_wrong_architecture_state_rejected(self):
        rng = np.random.default_rng(0)
        a = Network([Dense(4, 3, activation="softmax", rng=rng,
                           name="out")], (4,), "a")
        b = Network([Dense(4, 5, activation="softmax", rng=rng,
                           name="out")], (4,), "b")
        with pytest.raises(ShapeError):
            b.load_state_dict(a.state_dict())


class TestHostileInputs:
    def test_nan_seed_does_not_crash_generator(self, mnist_trio):
        engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=1)
        seed = np.full((1, 28, 28), np.nan)
        # NaNs propagate to NaN predictions; the oracle sees "no valid
        # difference" and the generator must terminate cleanly.
        result = engine.generate_from_seed(seed)
        assert result is None or result.x.shape == (1, 28, 28)

    def test_wrong_shape_seed_raises(self, mnist_trio):
        engine = DeepXplore(mnist_trio, PAPER_HYPERPARAMS["mnist"],
                            LightingConstraint(), rng=2)
        with pytest.raises(ShapeError):
            engine.generate_from_seed(np.zeros((2, 14, 14)))

    def test_inf_inputs_flagged_by_prediction(self, lenet1):
        probs = lenet1.predict(np.full((1, 1, 28, 28), np.inf))
        # Softmax of inf logits is NaN — visible, not silently wrong.
        assert np.isnan(probs).any() or np.isfinite(probs).all()


class TestTrainingRobustness:
    def test_empty_batchless_training_raises(self):
        rng = np.random.default_rng(3)
        net = Network([Dense(4, 2, activation="softmax", rng=rng)], (4,))
        with pytest.raises(ReproError):
            Trainer(net).fit(np.zeros((3, 4)), np.zeros(2, dtype=int))

    def test_non_integer_labels_fail_loss(self):
        rng = np.random.default_rng(4)
        net = Network([Dense(4, 2, activation="softmax", rng=rng)], (4,))
        with pytest.raises((IndexError, TypeError)):
            Trainer(net).fit(np.zeros((3, 4)),
                             np.array(["a", "b", "c"]), epochs=1)


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        from repro import errors
        for name in ("ShapeError", "ConfigError", "NotFittedError",
                     "ConstraintError", "CoverageError", "DatasetError"):
            assert issubclass(getattr(errors, name), ReproError)
