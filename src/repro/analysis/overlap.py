"""Activation-overlap statistics (paper Table 7).

Inputs from the same class should activate largely the same neurons;
inputs from different classes should overlap less.  This is the empirical
argument that neuron coverage tracks the number of distinct "rules" a
test set exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coverage.neuron import scale_layerwise
from repro.errors import ConfigError
from repro.utils.rng import as_rng

__all__ = ["OverlapStats", "activation_overlap", "class_pair_overlap"]


@dataclass
class OverlapStats:
    """Aggregate overlap numbers for a set of input pairs."""

    total_neurons: int
    avg_activated: float      # mean #active neurons per input
    avg_overlap: float        # mean #active neurons shared by a pair


def _active_sets(network, x, threshold, scaled):
    acts = network.neuron_activations(np.asarray(x, dtype=np.float64))
    if scaled:
        acts = scale_layerwise(acts, network.neuron_layers)
    return acts > threshold


def activation_overlap(network, pairs_a, pairs_b, threshold=0.25,
                       scaled=True):
    """Overlap stats for input pairs ``(pairs_a[i], pairs_b[i])``."""
    if pairs_a.shape != pairs_b.shape:
        raise ConfigError("pair arrays must have identical shapes")
    active_a = _active_sets(network, pairs_a, threshold, scaled)
    active_b = _active_sets(network, pairs_b, threshold, scaled)
    activated = np.concatenate([active_a.sum(axis=1), active_b.sum(axis=1)])
    overlap = (active_a & active_b).sum(axis=1)
    return OverlapStats(
        total_neurons=network.total_neurons,
        avg_activated=float(activated.mean()),
        avg_overlap=float(overlap.mean()),
    )


def class_pair_overlap(network, dataset, n_pairs=100, threshold=0.25,
                       rng=None, scaled=True):
    """The Table 7 experiment: same-class vs different-class pair overlap.

    Returns ``(same_class_stats, diff_class_stats)`` over ``n_pairs``
    random pairs each, drawn from the dataset's test split.
    """
    rng = as_rng(rng)
    x = dataset.x_test
    y = np.asarray(dataset.y_test)
    classes = np.unique(y)
    if classes.size < 2:
        raise ConfigError("need >= 2 classes for overlap comparison")

    same_a, same_b, diff_a, diff_b = [], [], [], []
    for _ in range(n_pairs):
        cls = classes[rng.integers(0, classes.size)]
        members = np.flatnonzero(y == cls)
        i, j = rng.choice(members, size=2, replace=False)
        same_a.append(x[i])
        same_b.append(x[j])

        cls_a, cls_b = rng.choice(classes, size=2, replace=False)
        i = rng.choice(np.flatnonzero(y == cls_a))
        j = rng.choice(np.flatnonzero(y == cls_b))
        diff_a.append(x[i])
        diff_b.append(x[j])

    same = activation_overlap(network, np.stack(same_a), np.stack(same_b),
                              threshold=threshold, scaled=scaled)
    diff = activation_overlap(network, np.stack(diff_a), np.stack(diff_b),
                              threshold=threshold, scaled=scaled)
    return same, diff
