"""Pooling layers: values, gradients, shape validation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import AvgPool2D, GlobalAvgPool2D, MaxPool2D

from tests.nn.gradcheck import check_layer_gradients


def test_maxpool_values():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = MaxPool2D(2).apply(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_backward_routes_to_argmax():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    layer = MaxPool2D(2)
    _, ctx = layer.forward(x)
    grad = layer.backward(ctx, np.ones((1, 1, 2, 2)))
    expected = np.zeros((1, 1, 4, 4))
    for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
        expected[0, 0, i, j] = 1.0
    np.testing.assert_array_equal(grad, expected)


def test_avgpool_values_and_gradcheck():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 4, 4))
    layer = AvgPool2D(2)
    out = layer.apply(x)
    np.testing.assert_allclose(
        out, x.reshape(2, 3, 2, 2, 2, 2).mean(axis=(3, 5)))
    check_layer_gradients(layer, x, rng)


def test_maxpool_gradcheck():
    rng = np.random.default_rng(1)
    # Continuous random values: ties have probability zero.
    check_layer_gradients(MaxPool2D(2), rng.normal(size=(2, 2, 6, 6)), rng)


def test_global_avgpool():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(3, 4, 5, 5))
    layer = GlobalAvgPool2D()
    out = layer.apply(x)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
    check_layer_gradients(layer, x, rng)
    assert layer.output_shape((4, 5, 5)) == (4,)


def test_pool_divisibility_enforced():
    with pytest.raises(ShapeError):
        MaxPool2D(2).apply(np.zeros((1, 1, 5, 4)))
    with pytest.raises(ShapeError):
        AvgPool2D(3).output_shape((1, 4, 4))


def test_nonsquare_pool():
    x = np.arange(8, dtype=float).reshape(1, 1, 2, 4)
    out = MaxPool2D((2, 4)).apply(x)
    assert out.shape == (1, 1, 1, 1)
    assert out[0, 0, 0, 0] == 7.0
